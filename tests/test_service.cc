/**
 * @file
 * Service-layer tests: the sbn_sweepd wire protocol (flat JSON
 * parse/format round trips and strictness), the crash-safe job
 * journal (format, fsynced append, last-write-wins replay, torn-tail
 * leniency), spec tokenization, and the exit-code contract both
 * tools and CI scripts branch on. The daemon's end-to-end behavior -
 * kill-anywhere recovery, cancel, drain, backpressure - is exercised
 * with real processes by the tools/ ctest scripts and the CI
 * service-recovery job (docs/service.md).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "service/daemon.hh"
#include "service/journal.hh"
#include "service/metrics.hh"
#include "service/protocol.hh"
#include "service/sweeprun.hh"
#include "shard/fault.hh"
#include "util/exit_codes.hh"

namespace sbn {
namespace {

std::string
tempPath(const std::string &name)
{
    const std::string path =
        ::testing::TempDir() + "sbn_service_" + name;
    std::remove(path.c_str());
    return path;
}

// ------------------------------------------------------ flat JSON

TEST(FlatJson, ParsesScalarsStrictly)
{
    JsonObject object;
    std::string error;
    ASSERT_TRUE(parseFlatJsonObject(
        "{\"s\":\"a b\",\"n\":-2.5,\"t\":true,\"f\":false,"
        "\"z\":null}",
        object, error))
        << error;
    EXPECT_EQ(object.size(), 5u);
    EXPECT_EQ(object["s"].kind, JsonScalar::Kind::String);
    EXPECT_EQ(object["s"].text, "a b");
    EXPECT_EQ(object["n"].kind, JsonScalar::Kind::Number);
    EXPECT_DOUBLE_EQ(object["n"].number, -2.5);
    EXPECT_TRUE(object["t"].boolean);
    EXPECT_FALSE(object["f"].boolean);
    EXPECT_EQ(object["z"].kind, JsonScalar::Kind::Null);

    ASSERT_TRUE(parseFlatJsonObject("{}", object, error)) << error;
    EXPECT_TRUE(object.empty());
}

TEST(FlatJson, RejectsWhatTheProtocolForbids)
{
    JsonObject object;
    std::string error;
    const char *bad[] = {
        "",                           // not an object
        "[1,2]",                      // not an object
        "{\"a\":1} trailing",         // trailing bytes
        "{\"a\":1,\"a\":2}",          // duplicate key
        "{\"a\":{\"b\":1}}",          // nesting
        "{\"a\":[1]}",                // nesting
        "{\"a\":nope}",               // malformed literal
        "{\"a\":1e999}",              // non-finite number
        "{\"a\":\"unterminated",      // unterminated string
        "{\"a\":\"bad\\qescape\"}",   // unsupported escape
        "{\"a\" 1}",                  // missing colon
        "{\"a\":1 \"b\":2}",          // missing comma
    };
    for (const char *text : bad) {
        EXPECT_FALSE(parseFlatJsonObject(text, object, error))
            << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(FlatJson, EscapeRoundTrips)
{
    const std::string nasty = "a\"b\\c\nd\te\rf/g";
    JsonObject object;
    std::string error;
    ASSERT_TRUE(parseFlatJsonObject(
        "{\"k\":\"" + jsonEscape(nasty) + "\"}", object, error))
        << error;
    EXPECT_EQ(object["k"].text, nasty);
}

// ------------------------------------------------------- requests

TEST(Protocol, RequestRoundTrips)
{
    Request submit;
    submit.kind = RequestKind::Submit;
    submit.spec = "--n=8 --m=16 --p=0.2,0.6 --spawn=2";
    submit.timeoutSeconds = 12.5;

    Request results;
    results.kind = RequestKind::Results;
    results.hasJob = true;
    results.job = 42;

    Request drain;
    drain.kind = RequestKind::Drain;

    for (const Request &original : {submit, results, drain}) {
        Request parsed;
        std::string error;
        ASSERT_TRUE(
            parseRequest(formatRequest(original), parsed, error))
            << requestKindName(original.kind) << ": " << error;
        EXPECT_EQ(parsed.kind, original.kind);
        EXPECT_EQ(parsed.spec, original.spec);
        EXPECT_DOUBLE_EQ(parsed.timeoutSeconds,
                         original.timeoutSeconds);
        EXPECT_EQ(parsed.hasJob, original.hasJob);
        EXPECT_EQ(parsed.job, original.job);
    }
}

TEST(Protocol, RejectsMalformedRequests)
{
    Request request;
    std::string error;
    const char *bad[] = {
        "{\"spec\":\"--n=8\"}",               // no cmd
        "{\"cmd\":\"explode\"}",              // unknown cmd
        "{\"cmd\":\"submit\"}",               // submit without spec
        "{\"cmd\":\"submit\",\"spec\":\"\"}", // empty spec
        "{\"cmd\":\"submit\",\"spec\":\"--n=8\",\"timeout_s\":-1}",
        "{\"cmd\":\"cancel\"}",               // cancel without job
        "{\"cmd\":\"results\"}",              // results without job
        "{\"cmd\":\"results\",\"job\":-1}",   // negative job
        "{\"cmd\":\"results\",\"job\":1.5}",  // fractional job
        "{\"cmd\":\"status\",\"job\":\"x\"}", // non-numeric job
    };
    for (const char *text : bad) {
        EXPECT_FALSE(parseRequest(text, request, error)) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(Protocol, ErrorResponsesAreMachineReadable)
{
    JsonObject object;
    std::string error;
    ASSERT_TRUE(parseFlatJsonObject(
        errorResponse("queue_full", "limit is 8"), object, error))
        << error;
    EXPECT_EQ(object["ok"].kind, JsonScalar::Kind::Bool);
    EXPECT_FALSE(object["ok"].boolean);
    EXPECT_EQ(object["error"].text, "queue_full");
    EXPECT_EQ(object["message"].text, "limit is 8");
}

// -------------------------------------------------------- journal

JobJournalEntry
entry(std::uint64_t job, JobState state,
      const std::string &spec = "--n=4 --m=8 --p=0.5")
{
    JobJournalEntry e;
    e.job = job;
    e.state = state;
    e.spec = spec;
    return e;
}

TEST(JobJournalFormat, EntryRoundTrips)
{
    JobJournalEntry original = entry(7, JobState::Failed);
    original.timeoutSeconds = 30;
    original.startedUnix = 1754600000;
    original.exitCode = 75;
    original.reason = "runner killed by signal 9 (\"oom\")";

    JobJournalEntry parsed;
    std::string error;
    ASSERT_TRUE(parseJournalEntry(formatJournalEntry(original),
                                  parsed, error))
        << error;
    EXPECT_EQ(parsed.job, original.job);
    EXPECT_EQ(parsed.state, original.state);
    EXPECT_EQ(parsed.spec, original.spec);
    EXPECT_DOUBLE_EQ(parsed.timeoutSeconds, original.timeoutSeconds);
    EXPECT_DOUBLE_EQ(parsed.startedUnix, original.startedUnix);
    EXPECT_EQ(parsed.exitCode, original.exitCode);
    EXPECT_EQ(parsed.reason, original.reason);
}

TEST(JobJournalFormat, RejectsForeignAndPartialLines)
{
    JobJournalEntry parsed;
    std::string error;
    const char *bad[] = {
        "{\"type\":\"sbn.point.v1\",\"job\":1}", // wrong type
        "{\"job\":1,\"state\":\"done\"}",        // no type
        // right type, missing keys (a torn line, typically):
        "{\"type\":\"sbn.job.v1\",\"job\":1,\"state\":\"done\"}",
        // the pre-started_unix 7-key shape is not this format:
        "{\"type\":\"sbn.job.v1\",\"job\":1,\"state\":\"done\","
        "\"spec\":\"x\",\"timeout_s\":0,\"exit\":0,\"reason\":\"\"}",
        // unknown state name:
        "{\"type\":\"sbn.job.v1\",\"job\":1,\"state\":\"paused\","
        "\"spec\":\"x\",\"timeout_s\":0,\"started_unix\":0,"
        "\"exit\":0,\"reason\":\"\"}",
    };
    for (const char *text : bad) {
        EXPECT_FALSE(parseJournalEntry(text, parsed, error)) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(JobJournalReplay, LastWriteWinsAndFoldsTheSubmitSpec)
{
    const std::string path = tempPath("replay");
    {
        JobJournal journal(path);
        journal.append(entry(0, JobState::Submitted, "--n=4 --p=1"));
        journal.append(entry(1, JobState::Submitted, "--n=8 --p=1"));
        JobJournalEntry running = entry(0, JobState::Running, "");
        journal.append(running);
        JobJournalEntry done = entry(0, JobState::Done, "");
        done.exitCode = 0;
        journal.append(done);
    }
    const std::vector<JobJournalEntry> jobs = replayJobJournal(path);
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].job, 0u);
    EXPECT_EQ(jobs[0].state, JobState::Done);
    // Later entries carry the submit's description forward.
    EXPECT_EQ(jobs[0].spec, "--n=4 --p=1");
    EXPECT_EQ(jobs[1].job, 1u);
    EXPECT_EQ(jobs[1].state, JobState::Submitted);
    EXPECT_EQ(jobs[1].spec, "--n=8 --p=1");
}

TEST(JobJournalReplay, MissingFileReplaysEmpty)
{
    EXPECT_TRUE(replayJobJournal(tempPath("absent")).empty());
}

TEST(JobJournalReplay, TornFinalLineIsDroppedLeniently)
{
    const std::string path = tempPath("torn");
    {
        JobJournal journal(path);
        journal.append(entry(3, JobState::Submitted));
        journal.append(entry(3, JobState::Running, ""));
    }
    {
        // The kill artifact: a final line cut mid-append.
        std::ofstream out(path, std::ios::app);
        const std::string full =
            formatJournalEntry(entry(3, JobState::Done, ""));
        out << full.substr(0, full.size() / 2);
    }
    const std::vector<JobJournalEntry> jobs = replayJobJournal(path);
    ASSERT_EQ(jobs.size(), 1u);
    // The torn Done never happened; the job recovers as Running and
    // will be relaunched with resume.
    EXPECT_EQ(jobs[0].state, JobState::Running);

    // Replay must also have TRUNCATED the torn bytes: the journal
    // writer appends with O_APPEND, so a surviving tail would glue
    // the next entry onto it - a malformed mid-file line that turns
    // the restart after next fatal. Appending and replaying again
    // must therefore work cleanly.
    {
        std::ifstream check(path, std::ios::binary);
        std::string bytes{std::istreambuf_iterator<char>(check),
                          std::istreambuf_iterator<char>()};
        ASSERT_FALSE(bytes.empty());
        EXPECT_EQ(bytes.back(), '\n'); // ends on a line boundary
    }
    {
        JobJournal journal(path);
        journal.append(entry(3, JobState::Done, ""));
    }
    const std::vector<JobJournalEntry> after = replayJobJournal(path);
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].state, JobState::Done);
}

TEST(JobJournalDeathTest, TornLineFollowedByMoreIsCorruptionNotATail)
{
    const std::string path = tempPath("midtorn");
    {
        std::ofstream out(path);
        out << formatJournalEntry(entry(0, JobState::Submitted))
            << "\n";
        out << "{\"type\":\"sbn.job.v1\",\"job\":0,\"sta\n"; // torn
        out << formatJournalEntry(entry(0, JobState::Running, ""))
            << "\n";
    }
    EXPECT_EXIT(replayJobJournal(path),
                ::testing::ExitedWithCode(kExitFatal),
                "only the final line may be torn");
}

TEST(JobJournalDeathTest, TransitionWithoutSubmitIsFatal)
{
    const std::string path = tempPath("nosubmit");
    {
        std::ofstream out(path);
        out << formatJournalEntry(entry(5, JobState::Running, ""))
            << "\n";
    }
    EXPECT_EXIT(replayJobJournal(path),
                ::testing::ExitedWithCode(kExitFatal),
                "without a submitted entry");
}

TEST(JobJournal, StateNamesMatchTheFaultPlaneList)
{
    // shard/fault.cc duplicates the journal-state names (the shard
    // layer cannot depend on the service layer); this is the pin
    // that keeps the two lists identical.
    const JobState states[] = {
        JobState::Submitted, JobState::Running, JobState::Merging,
        JobState::Done,      JobState::Failed,  JobState::Cancelled,
    };
    ASSERT_EQ(std::size(states),
              std::size(kFaultJournalStates));
    for (std::size_t i = 0; i < std::size(states); ++i)
        EXPECT_STREQ(jobStateName(states[i]),
                     kFaultJournalStates[i]);

    EXPECT_FALSE(jobStateTerminal(JobState::Submitted));
    EXPECT_FALSE(jobStateTerminal(JobState::Running));
    EXPECT_FALSE(jobStateTerminal(JobState::Merging));
    EXPECT_TRUE(jobStateTerminal(JobState::Done));
    EXPECT_TRUE(jobStateTerminal(JobState::Failed));
    EXPECT_TRUE(jobStateTerminal(JobState::Cancelled));
}

// ------------------------------------------------- spec tokenizing

TEST(SpecTokenize, SplitsOnWhitespaceRuns)
{
    const std::vector<std::string> tokens =
        tokenizeSpecString("  --n=8\t--m=16   --p=0.2,0.6 ");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0], "--n=8");
    EXPECT_EQ(tokens[1], "--m=16");
    EXPECT_EQ(tokens[2], "--p=0.2,0.6");
    EXPECT_TRUE(tokenizeSpecString("").empty());
}

TEST(SpecParse, ParsesAFullSpecIncludingSpawn)
{
    const SweepRunOptions opt = parseSweepSpecString(
        "--n=8 --m=16 --p=0.2,0.6 --spawn=2 --retries=1 "
        "--hang-timeout=3 --layout=strided");
    EXPECT_EQ(opt.spec.processors, std::vector<int>{8});
    EXPECT_EQ(opt.spec.modules, std::vector<int>{16});
    EXPECT_EQ(opt.spec.requestProbabilities,
              (std::vector<double>{0.2, 0.6}));
    EXPECT_EQ(opt.spawnShards, 2u);
    EXPECT_EQ(opt.retries, 1u);
    EXPECT_DOUBLE_EQ(opt.hangTimeout, 3.0);
    EXPECT_EQ(opt.layout, ShardLayout::Strided);
}

TEST(SpecParse, ValidationForksSoBadSpecsCannotKillTheCaller)
{
    EXPECT_TRUE(specParsesCleanly("--n=8 --m=16 --p=0.5"));
    // Unknown flag, bad value, forbidden quoting, empty grid: all
    // must come back as a clean "false", not a fatal in this
    // process.
    EXPECT_FALSE(specParsesCleanly("--frobnicate=1"));
    EXPECT_FALSE(specParsesCleanly("--n=8 --m=16 --p=banana"));
    EXPECT_FALSE(specParsesCleanly("--n='8'"));
    EXPECT_FALSE(specParsesCleanly("--dir=elsewhere")); // front-end flag
}

// ------------------------------------------------------ exit codes

TEST(ExitCodes, ContractIsPinned)
{
    // These values are wire/script ABI (CI matches on them; sysexits
    // semantics); changing one is a breaking change, not a refactor.
    EXPECT_EQ(kExitOk, 0);
    EXPECT_EQ(kExitFatal, 1);
    EXPECT_EQ(kExitNoInput, 66);
    EXPECT_EQ(kExitUnavailable, 69);
    EXPECT_EQ(kPartialResultExit, 75);
    EXPECT_EQ(exitCodeForSignal(SIGTERM), 143);
    EXPECT_EQ(exitCodeForSignal(SIGKILL), 137);
    EXPECT_EQ(exitCodeForSignal(SIGINT), 130);
}

// ---------------------------------------------------- path layout

TEST(DaemonPaths, AreCanonical)
{
    EXPECT_EQ(daemonJournalPath("st"), "st/jobs.jsonl");
    EXPECT_EQ(daemonPortFilePath("st"), "st/port");
    EXPECT_EQ(daemonHeartbeatPath("st"), "st/heartbeat");
    EXPECT_EQ(daemonJobDir("st", 12), "st/job-12");
    EXPECT_EQ(daemonMergedPath("st/job-12"),
              "st/job-12/merged.jsonl");
}

// ---------------------------------------------------- daemon metrics

TEST(Protocol, MetricsRequestRoundTrips)
{
    Request whole;
    whole.kind = RequestKind::Metrics;

    Request one_job;
    one_job.kind = RequestKind::Metrics;
    one_job.hasJob = true;
    one_job.job = 3;

    for (const Request &original : {whole, one_job}) {
        Request parsed;
        std::string error;
        ASSERT_TRUE(
            parseRequest(formatRequest(original), parsed, error))
            << error;
        EXPECT_EQ(parsed.kind, RequestKind::Metrics);
        EXPECT_EQ(parsed.hasJob, original.hasJob);
        EXPECT_EQ(parsed.job, original.job);
    }

    // The hand-written wire forms parse too.
    Request parsed;
    std::string error;
    ASSERT_TRUE(parseRequest("{\"cmd\":\"metrics\"}", parsed, error))
        << error;
    EXPECT_EQ(parsed.kind, RequestKind::Metrics);
    EXPECT_FALSE(parsed.hasJob);
    ASSERT_TRUE(parseRequest("{\"cmd\":\"metrics\",\"job\":3}",
                             parsed, error))
        << error;
    EXPECT_TRUE(parsed.hasJob);
    EXPECT_EQ(parsed.job, 3u);
    EXPECT_FALSE(parseRequest("{\"cmd\":\"metrics\",\"job\":-2}",
                              parsed, error));
}

/** A snapshot with every field distinct, so a swapped key would show. */
DaemonMetricsSnapshot
sampleMetrics()
{
    DaemonMetricsSnapshot m;
    m.uptimeSeconds = 12.5;
    m.draining = true;
    m.queued = 2;
    m.running = 1;
    m.done = 3;
    m.failed = 4;
    m.cancelled = 5;
    m.jobsTotal = 15;
    m.queueDepth = 2;
    m.journalAppends = 21;
    m.journalFsyncs = 22;
    m.resultsBytesServed = 1024;
    m.runnerRelaunches = 6;
    m.hasActiveJob = true;
    m.activeJob = 7;
    return m;
}

TEST(DaemonMetrics, ResponseIsFlatJsonWithDocumentedKeys)
{
    const std::string line =
        formatDaemonMetricsResponse(sampleMetrics());
    JsonObject fields;
    std::string error;
    ASSERT_TRUE(parseFlatJsonObject(line, fields, error)) << error;

    EXPECT_EQ(fields.at("ok").kind, JsonScalar::Kind::Bool);
    EXPECT_EQ(fields.at("type").text, "sbn.metrics.v1");
    EXPECT_EQ(fields.at("uptime_s").number, 12.5);
    EXPECT_EQ(fields.at("queued").number, 2.0);
    EXPECT_EQ(fields.at("running").number, 1.0);
    EXPECT_EQ(fields.at("done").number, 3.0);
    EXPECT_EQ(fields.at("failed").number, 4.0);
    EXPECT_EQ(fields.at("cancelled").number, 5.0);
    EXPECT_EQ(fields.at("jobs_total").number, 15.0);
    EXPECT_EQ(fields.at("queue_depth").number, 2.0);
    EXPECT_EQ(fields.at("draining").kind, JsonScalar::Kind::Bool);
    EXPECT_EQ(fields.at("journal_appends").number, 21.0);
    EXPECT_EQ(fields.at("journal_fsyncs").number, 22.0);
    EXPECT_EQ(fields.at("results_bytes_served").number, 1024.0);
    EXPECT_EQ(fields.at("runner_relaunches").number, 6.0);
    EXPECT_EQ(fields.at("active_job").number, 7.0);
}

TEST(DaemonMetrics, IdleSnapshotReportsNullActiveJob)
{
    DaemonMetricsSnapshot m = sampleMetrics();
    m.hasActiveJob = false;
    const std::string line = formatDaemonMetricsResponse(m);
    JsonObject fields;
    std::string error;
    ASSERT_TRUE(parseFlatJsonObject(line, fields, error)) << error;
    EXPECT_EQ(fields.at("active_job").kind, JsonScalar::Kind::Null);
}

TEST(DaemonMetrics, HeartbeatV2KeepsEveryV1Key)
{
    const std::string body =
        formatHeartbeatV2(sampleMetrics(), 1754650000);
    ASSERT_FALSE(body.empty());
    EXPECT_EQ(body.back(), '\n');

    JsonObject fields;
    std::string error;
    ASSERT_TRUE(parseFlatJsonObject(
        body.substr(0, body.size() - 1), fields, error))
        << error;
    EXPECT_EQ(fields.at("type").text, "sbn.heartbeat.v2");

    // The v1 contract: a consumer reading ts_unix, queued, running
    // and draining keeps working against a v2 body - same keys, same
    // scalar kinds, same meanings.
    EXPECT_EQ(fields.at("ts_unix").number, 1754650000.0);
    EXPECT_EQ(fields.at("queued").kind, JsonScalar::Kind::Number);
    EXPECT_EQ(fields.at("running").kind, JsonScalar::Kind::Number);
    EXPECT_EQ(fields.at("draining").kind, JsonScalar::Kind::Bool);

    // And the v2 additions ride alongside.
    EXPECT_TRUE(fields.count("queue_depth"));
    EXPECT_TRUE(fields.count("journal_appends"));
    EXPECT_TRUE(fields.count("active_job"));
}

} // namespace
} // namespace sbn
