/**
 * @file
 * Compile-time check of the umbrella header: sbn.hh must be
 * self-contained and expose the whole public API.
 */

#include "sbn.hh"

#include <gtest/gtest.h>

namespace sbn {
namespace {

/**
 * Death tests must use the fork+exec ("threadsafe") style binary-wide:
 * several suites keep process-lifetime worker pools alive
 * (sharedParallelRunner), and a plain fork() from a multi-threaded
 * process deadlocks the child on whatever glibc lock a pool thread
 * held at fork time. ctest runs each test in its own process, but a
 * combined ./sbn_tests invocation must not hang either.
 *
 * The flag is set from a test Environment (SetUp runs after gtest's
 * own dynamic initialization and flag parsing, before the first
 * test), not from a namespace-scope assignment - cross-TU static
 * init order against gtest's flag object is unspecified, and losing
 * that race would silently revert to the deadlock-prone "fast"
 * style. The style is forced unconditionally; there is no safe
 * reason to run this binary's death tests in "fast" style.
 */
class ThreadsafeDeathTestStyle : public ::testing::Environment
{
  public:
    void
    SetUp() override
    {
        ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    }
};

const ::testing::Environment *const g_threadsafe_death_tests =
    ::testing::AddGlobalTestEnvironment(new ThreadsafeDeathTestStyle);

TEST(Umbrella, ExposesEndToEndWorkflow)
{
    // Touch one symbol from each library layer through sbn.hh only.
    SystemConfig cfg;
    cfg.numProcessors = 2;
    cfg.numModules = 2;
    cfg.memoryRatio = 2;
    cfg.warmupCycles = 10;
    cfg.measureCycles = 2000;

    const Metrics metrics = runOnce(cfg);
    EXPECT_GT(metrics.ebw, 0.0);

    EXPECT_NEAR(crossbarExactBandwidth(2, 2), 1.5, 1e-12);
    EXPECT_GT(memprioApproxEbw(2, 2, 2), 1.0);
    EXPECT_GT(mvaBufferedBus(2, 2, 2).ebw, 0.0);
    EXPECT_GT(mvaBufferedBusDeterministic(2, 2, 2).ebw, 0.0);
    EXPECT_DOUBLE_EQ(binomial(4, 2), 6.0);

    RandomGenerator rng(1);
    EXPECT_LT(rng.uniformInt(8), 8u);

    Accumulator acc;
    acc.add(1.0);
    EXPECT_EQ(acc.count(), 1u);

    // shard/: plan + record layers reachable through the umbrella.
    const ShardPlan plan(4, 2, ShardLayout::Strided);
    EXPECT_EQ(plan.indices(1), (std::vector<std::size_t>{1, 3}));
    const PointRecord record = makeSweepRecord(0, cfg, metrics.ebw);
    EXPECT_EQ(record.configFp, configFingerprint(cfg));
    PointRecord parsed;
    std::string error;
    ASSERT_TRUE(parseRecord(formatRecord(record), parsed, error));
    EXPECT_TRUE(parsed.bitIdentical(record));
}

} // namespace
} // namespace sbn
