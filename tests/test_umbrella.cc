/**
 * @file
 * Compile-time check of the umbrella header: sbn.hh must be
 * self-contained and expose the whole public API.
 */

#include "sbn.hh"

#include <gtest/gtest.h>

namespace sbn {
namespace {

TEST(Umbrella, ExposesEndToEndWorkflow)
{
    // Touch one symbol from each library layer through sbn.hh only.
    SystemConfig cfg;
    cfg.numProcessors = 2;
    cfg.numModules = 2;
    cfg.memoryRatio = 2;
    cfg.warmupCycles = 10;
    cfg.measureCycles = 2000;

    const Metrics metrics = runOnce(cfg);
    EXPECT_GT(metrics.ebw, 0.0);

    EXPECT_NEAR(crossbarExactBandwidth(2, 2), 1.5, 1e-12);
    EXPECT_GT(memprioApproxEbw(2, 2, 2), 1.0);
    EXPECT_GT(mvaBufferedBus(2, 2, 2).ebw, 0.0);
    EXPECT_GT(mvaBufferedBusDeterministic(2, 2, 2).ebw, 0.0);
    EXPECT_DOUBLE_EQ(binomial(4, 2), 6.0);

    RandomGenerator rng(1);
    EXPECT_LT(rng.uniformInt(8), 8u);

    Accumulator acc;
    acc.add(1.0);
    EXPECT_EQ(acc.count(), 1u);
}

} // namespace
} // namespace sbn
