/**
 * @file
 * Tests for the crossbar bandwidth models: closed forms, symmetry,
 * literature values and the relation between exact and approximate
 * figures.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analytic/crossbar.hh"

namespace sbn {
namespace {

TEST(Crossbar, TwoByTwoClosedForm)
{
    // Hand-solved: pi({2}) = pi({1,1}) = 1/2, E[x] = 1.5.
    EXPECT_NEAR(crossbarExactBandwidth(2, 2), 1.5, 1e-12);
}

TEST(Crossbar, ApproximatelySymmetricInNandM)
{
    // BW(n, m) ~= BW(m, n) to about three decimals -- the symmetry the
    // literature (and the paper's Table 1) reports at printed
    // precision. It is NOT exact: e.g. BW(3,4) = 2.26923... vs
    // BW(4,3) = 2.27007..., both verified against an independent
    // brute-force transition enumeration in test_occupancy_chain.
    for (int n : {2, 3, 5, 8}) {
        for (int m : {2, 4, 7}) {
            EXPECT_NEAR(crossbarExactBandwidth(n, m),
                        crossbarExactBandwidth(m, n), 1.5e-3)
                << "n=" << n << " m=" << m;
        }
    }
    // And the asymmetry is real (regression-pins the exact values).
    EXPECT_NEAR(crossbarExactBandwidth(3, 4), 2.2692307692, 1e-9);
    EXPECT_NEAR(crossbarExactBandwidth(4, 3), 2.2700729927, 1e-9);
}

TEST(Crossbar, StreckerEqualsPmfMean)
{
    for (int n : {1, 2, 4, 8, 16}) {
        for (int m : {1, 2, 4, 8, 16}) {
            EXPECT_NEAR(crossbarStreckerBandwidth(n, m),
                        crossbarApproxBandwidth(n, m), 1e-9)
                << "n=" << n << " m=" << m;
        }
    }
}

TEST(Crossbar, StreckerOverestimatesExact)
{
    // The memoryless approximation ignores request persistence, which
    // spreads requests more evenly than the real dynamics, so it
    // overestimates bandwidth (classic observation).
    for (int n : {2, 4, 8}) {
        for (int m : {2, 4, 8}) {
            EXPECT_GE(crossbarStreckerBandwidth(n, m) + 1e-12,
                      crossbarExactBandwidth(n, m))
                << "n=" << n << " m=" << m;
        }
    }
}

TEST(Crossbar, KnownSquareValues)
{
    // 8x8 exact bandwidth: the paper's conclusions use 4.947 (the
    // single-bus m=14, r=8 cell of Table 3a "attains" it).
    EXPECT_NEAR(crossbarExactBandwidth(8, 8), 4.947, 2e-3);
    // Large square systems approach 0.586*n (known asymptote ~0.6n).
    const double bw16 = crossbarExactBandwidth(16, 16);
    EXPECT_GT(bw16 / 16.0, 0.55);
    EXPECT_LT(bw16 / 16.0, 0.65);
}

TEST(Crossbar, BoundsAndMonotonicity)
{
    // BW <= min(n, m); BW grows with m at fixed n.
    double prev = 0.0;
    for (int m = 1; m <= 12; ++m) {
        const double bw = crossbarExactBandwidth(6, m);
        EXPECT_LE(bw, std::min(6, m) + 1e-12);
        EXPECT_GE(bw, prev - 1e-12) << "m=" << m;
        prev = bw;
    }
}

TEST(Crossbar, DegenerateCases)
{
    // One module: always exactly one request serviced.
    EXPECT_NEAR(crossbarExactBandwidth(5, 1), 1.0, 1e-12);
    // One processor: never any conflict.
    EXPECT_NEAR(crossbarExactBandwidth(1, 7), 1.0, 1e-12);
    EXPECT_NEAR(crossbarStreckerBandwidth(1, 7), 1.0, 1e-12);
}

} // namespace
} // namespace sbn
