/**
 * @file
 * Kernel-differential tests: the cycle-skipping kernel must produce
 * bit-identical Metrics to the classic kernel -- same completions,
 * same per-processor counts, same wait histogram, exactly -- across
 * the whole configuration grid. Any divergence means a random draw
 * or a grant decision moved, which is a correctness bug, not noise.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/system.hh"

namespace sbn {
namespace {

struct KernelDiffCase
{
    std::string name;
    SystemConfig config;
};

std::ostream &
operator<<(std::ostream &os, const KernelDiffCase &c)
{
    return os << c.name;
}

SystemConfig
diffBase()
{
    SystemConfig cfg;
    cfg.numProcessors = 8;
    cfg.numModules = 8;
    cfg.memoryRatio = 8;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 30000;
    cfg.seed = 9001;
    cfg.collectWaitHistogram = true;
    return cfg;
}

std::vector<KernelDiffCase>
diffGrid()
{
    std::vector<KernelDiffCase> grid;

    // Full cross of organization x policy x selection at a moderate
    // request probability: every arbitration code path.
    for (bool buffered : {false, true}) {
        for (auto policy : {ArbitrationPolicy::ProcessorPriority,
                            ArbitrationPolicy::MemoryPriority}) {
            for (auto selection :
                 {SelectionRule::Random, SelectionRule::OldestFirst}) {
                SystemConfig cfg = diffBase();
                cfg.buffered = buffered;
                cfg.policy = policy;
                cfg.selection = selection;
                cfg.requestProbability = 0.4;
                grid.push_back(
                    {std::string(buffered ? "buf" : "unbuf") +
                         (policy == ArbitrationPolicy::ProcessorPriority
                              ? "_procprio"
                              : "_memprio") +
                         (selection == SelectionRule::Random ? "_random"
                                                             : "_fcfs"),
                     cfg});
            }
        }
    }

    // Low request probability: long think spans, the calendar's
    // heaviest regime (and the Fig. 2/3 sweep regime).
    for (double p : {0.02, 0.1}) {
        for (bool buffered : {false, true}) {
            SystemConfig cfg = diffBase();
            cfg.requestProbability = p;
            cfg.buffered = buffered;
            cfg.numProcessors = 12;
            cfg.numModules = 6;
            grid.push_back({"lowp_" + std::to_string(p).substr(0, 4) +
                                (buffered ? "_buf" : "_unbuf"),
                            cfg});
        }
    }

    // Saturation: every processor issues back to back.
    {
        SystemConfig cfg = diffBase();
        cfg.requestProbability = 1.0;
        cfg.numProcessors = 9;
        cfg.numModules = 3;
        grid.push_back({"saturated", cfg});
    }

    // Non-uniform module weights (hot module) with both selections.
    for (auto selection :
         {SelectionRule::Random, SelectionRule::OldestFirst}) {
        SystemConfig cfg = diffBase();
        cfg.numProcessors = 6;
        cfg.numModules = 4;
        cfg.requestProbability = 0.3;
        cfg.moduleWeights = {4.0, 1.0, 1.0, 2.0};
        cfg.selection = selection;
        grid.push_back({std::string("weighted") +
                            (selection == SelectionRule::Random
                                 ? "_random"
                                 : "_fcfs"),
                        cfg});
    }

    // Finite buffer capacities: acceptance flips on queue occupancy
    // and output-blocked modules resume on response drain.
    {
        SystemConfig cfg = diffBase();
        cfg.buffered = true;
        cfg.inputCapacity = 2;
        cfg.outputCapacity = 1;
        cfg.numProcessors = 10;
        cfg.numModules = 3;
        cfg.requestProbability = 0.7;
        grid.push_back({"capacity_limited", cfg});
    }

    // Degenerate shapes and short memory: r = 1 makes completion and
    // transfer events collide on the same tick.
    {
        SystemConfig cfg = diffBase();
        cfg.numProcessors = 1;
        cfg.numModules = 5;
        cfg.memoryRatio = 1;
        cfg.requestProbability = 0.5;
        grid.push_back({"single_proc_r1", cfg});
    }
    {
        SystemConfig cfg = diffBase();
        cfg.numProcessors = 7;
        cfg.numModules = 1;
        cfg.memoryRatio = 2;
        cfg.requestProbability = 0.8;
        cfg.policy = ArbitrationPolicy::MemoryPriority;
        grid.push_back({"single_module_memprio", cfg});
    }

    // Silent system: p = 0 exercises the calendar with no RNG at all.
    {
        SystemConfig cfg = diffBase();
        cfg.requestProbability = 0.0;
        cfg.measureCycles = 5000;
        grid.push_back({"silent", cfg});
    }

    // Processor cycle > 63 ticks: the think calendar's bitmask cannot
    // represent the buckets, forcing the linear-scan fallback.
    {
        SystemConfig cfg = diffBase();
        cfg.memoryRatio = 70;
        cfg.numProcessors = 5;
        cfg.numModules = 4;
        cfg.requestProbability = 0.2;
        grid.push_back({"wide_cycle_mask_fallback", cfg});
    }

    return grid;
}

/** Exact, field-by-field Metrics comparison (no tolerances). */
void
expectIdenticalMetrics(const Metrics &classic, const Metrics &skip)
{
    EXPECT_EQ(classic.measuredCycles, skip.measuredCycles);
    EXPECT_EQ(classic.completedRequests, skip.completedRequests);
    EXPECT_EQ(classic.issuedRequests, skip.issuedRequests);
    EXPECT_EQ(classic.busBusyCycles, skip.busBusyCycles);
    EXPECT_EQ(classic.ebw, skip.ebw);
    EXPECT_EQ(classic.ebwFromBusUtilization, skip.ebwFromBusUtilization);
    EXPECT_EQ(classic.busUtilization, skip.busUtilization);
    EXPECT_EQ(classic.meanModuleUtilization, skip.meanModuleUtilization);
    EXPECT_EQ(classic.processorEfficiency, skip.processorEfficiency);
    EXPECT_EQ(classic.meanWaitCycles, skip.meanWaitCycles);
    EXPECT_EQ(classic.meanServiceCycles, skip.meanServiceCycles);

    EXPECT_EQ(classic.waitStats.count(), skip.waitStats.count());
    EXPECT_EQ(classic.waitStats.mean(), skip.waitStats.mean());
    EXPECT_EQ(classic.waitStats.variance(), skip.waitStats.variance());
    EXPECT_EQ(classic.waitStats.min(), skip.waitStats.min());
    EXPECT_EQ(classic.waitStats.max(), skip.waitStats.max());

    EXPECT_EQ(classic.perProcessorCompletions,
              skip.perProcessorCompletions);

    ASSERT_EQ(classic.waitHistogram.has_value(),
              skip.waitHistogram.has_value());
    if (classic.waitHistogram.has_value()) {
        const Histogram &a = *classic.waitHistogram;
        const Histogram &b = *skip.waitHistogram;
        ASSERT_EQ(a.numBins(), b.numBins());
        EXPECT_EQ(a.count(), b.count());
        EXPECT_EQ(a.underflow(), b.underflow());
        EXPECT_EQ(a.overflow(), b.overflow());
        EXPECT_EQ(a.mean(), b.mean());
        for (std::size_t bin = 0; bin < a.numBins(); ++bin)
            EXPECT_EQ(a.binCount(bin), b.binCount(bin)) << "bin " << bin;
    }
}

class KernelDiff : public ::testing::TestWithParam<KernelDiffCase>
{};

TEST_P(KernelDiff, BitIdenticalMetrics)
{
    SystemConfig classic_cfg = GetParam().config;
    classic_cfg.kernel = KernelKind::Classic;
    SystemConfig skip_cfg = GetParam().config;
    skip_cfg.kernel = KernelKind::CycleSkip;

    const Metrics classic = runOnce(classic_cfg);
    const Metrics skip = runOnce(skip_cfg);
    expectIdenticalMetrics(classic, skip);
}

TEST_P(KernelDiff, BitIdenticalAcrossSeeds)
{
    for (std::uint64_t seed : {1ull, 77ull, 123456789ull}) {
        SystemConfig classic_cfg = GetParam().config;
        classic_cfg.kernel = KernelKind::Classic;
        classic_cfg.seed = seed;
        classic_cfg.measureCycles = 8000;
        SystemConfig skip_cfg = classic_cfg;
        skip_cfg.kernel = KernelKind::CycleSkip;

        const Metrics classic = runOnce(classic_cfg);
        const Metrics skip = runOnce(skip_cfg);
        expectIdenticalMetrics(classic, skip);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KernelDiff, ::testing::ValuesIn(diffGrid()),
    [](const ::testing::TestParamInfo<KernelDiffCase> &info) {
        std::string name = info.param.name;
        for (char &c : name)
            if (c == '.' || c == '-')
                c = '_';
        return name;
    });

TEST(KernelDiffExtras, DefaultKernelIsCycleSkip)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.kernel, KernelKind::CycleSkip);
}

TEST(KernelDiffExtras, CycleSkipSchedulesFarFewerHeapEvents)
{
    SystemConfig cfg = diffBase();
    cfg.requestProbability = 0.05;
    cfg.numProcessors = 16;
    cfg.numModules = 16;
    cfg.warmupCycles = 0;
    cfg.measureCycles = 50000;

    cfg.kernel = KernelKind::Classic;
    SingleBusSystem classic(cfg);
    (void)classic.run();

    cfg.kernel = KernelKind::CycleSkip;
    SingleBusSystem skip(cfg);
    (void)skip.run();

    // Identical Bernoulli/issue draw counts (the RNG stream contract)
    // but a much lighter event heap: thinking no longer costs events.
    EXPECT_EQ(classic.thinkDraws(), skip.thinkDraws());
    EXPECT_LT(skip.heapEventsExecuted(),
              classic.heapEventsExecuted() / 4);
}

TEST(KernelDiffExtras, SteadyStateArbitrationDoesNotReallocate)
{
    for (auto kernel : {KernelKind::Classic, KernelKind::CycleSkip}) {
        for (bool buffered : {false, true}) {
            SystemConfig cfg = diffBase();
            cfg.kernel = kernel;
            cfg.buffered = buffered;
            cfg.requestProbability = 0.6;
            cfg.numProcessors = 24;
            cfg.numModules = 6;
            cfg.measureCycles = 20000;

            SingleBusSystem system(cfg);
            const auto before = system.scratchCapacities();
            (void)system.run();
            EXPECT_EQ(before, system.scratchCapacities())
                << "scratch container reallocated during run "
                << "(kernel=" << (kernel == KernelKind::Classic ? "classic"
                                                                : "skip")
                << " buffered=" << buffered << ")";
        }
    }
}

} // namespace
} // namespace sbn
