/**
 * @file
 * The Classic-era kernel-differential grid, repointed at golden
 * files.
 *
 * Until the Classic kernel's retirement this suite ran every
 * configuration class under both kernels and asserted bit-identical
 * Metrics. The classic kernel is gone; the same grid now pins the
 * surviving kernel's absolute Metrics against
 * tests/golden/kernel_metrics_grid.txt (generated while the two
 * kernels were still provably identical, so the pinned values *are*
 * the Classic kernel's values for every configuration predating the
 * workload layer). Any RNG-stream reorder or grant-decision change
 * still fails here, per configuration class and counter.
 *
 * Regenerate after an intentional behavior change with
 * SBN_REGEN_GOLDEN=1 (see docs/testing.md).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/system.hh"
#include "golden_util.hh"

namespace sbn {
namespace {

using golden::GoldenLine;
using golden::checkExactGolden;
using golden::exact;

struct GridCase
{
    std::string name;
    SystemConfig config;
};

SystemConfig
diffBase()
{
    SystemConfig cfg;
    cfg.numProcessors = 8;
    cfg.numModules = 8;
    cfg.memoryRatio = 8;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 30000;
    cfg.seed = 9001;
    cfg.collectWaitHistogram = true;
    return cfg;
}

std::vector<GridCase>
diffGrid()
{
    std::vector<GridCase> grid;

    // Full cross of organization x policy x selection at a moderate
    // request probability: every arbitration code path.
    for (bool buffered : {false, true}) {
        for (auto policy : {ArbitrationPolicy::ProcessorPriority,
                            ArbitrationPolicy::MemoryPriority}) {
            for (auto selection :
                 {SelectionRule::Random, SelectionRule::OldestFirst}) {
                SystemConfig cfg = diffBase();
                cfg.buffered = buffered;
                cfg.policy = policy;
                cfg.selection = selection;
                cfg.requestProbability = 0.4;
                grid.push_back(
                    {std::string(buffered ? "buf" : "unbuf") +
                         (policy == ArbitrationPolicy::ProcessorPriority
                              ? "_procprio"
                              : "_memprio") +
                         (selection == SelectionRule::Random ? "_random"
                                                             : "_fcfs"),
                     cfg});
            }
        }
    }

    // Low request probability: long think spans, the calendar's
    // heaviest regime (and the Fig. 2/3 sweep regime).
    for (double p : {0.02, 0.1}) {
        for (bool buffered : {false, true}) {
            SystemConfig cfg = diffBase();
            cfg.requestProbability = p;
            cfg.buffered = buffered;
            cfg.numProcessors = 12;
            cfg.numModules = 6;
            grid.push_back({"lowp_" + std::to_string(p).substr(0, 4) +
                                (buffered ? "_buf" : "_unbuf"),
                            cfg});
        }
    }

    // Saturation: every processor issues back to back.
    {
        SystemConfig cfg = diffBase();
        cfg.requestProbability = 1.0;
        cfg.numProcessors = 9;
        cfg.numModules = 3;
        grid.push_back({"saturated", cfg});
    }

    // Non-uniform module weights (hot module) with both selections -
    // these entries postdate the Classic kernel (the workload layer's
    // alias sampler defines their RNG consumption) and pin the
    // Weighted reference pattern.
    for (auto selection :
         {SelectionRule::Random, SelectionRule::OldestFirst}) {
        SystemConfig cfg = diffBase();
        cfg.numProcessors = 6;
        cfg.numModules = 4;
        cfg.requestProbability = 0.3;
        cfg.workload.pattern = ReferencePattern::Weighted;
        cfg.workload.moduleWeights = {4.0, 1.0, 1.0, 2.0};
        cfg.selection = selection;
        grid.push_back({std::string("weighted") +
                            (selection == SelectionRule::Random
                                 ? "_random"
                                 : "_fcfs"),
                        cfg});
    }

    // Finite buffer capacities: acceptance flips on queue occupancy
    // and output-blocked modules resume on response drain.
    {
        SystemConfig cfg = diffBase();
        cfg.buffered = true;
        cfg.inputCapacity = 2;
        cfg.outputCapacity = 1;
        cfg.numProcessors = 10;
        cfg.numModules = 3;
        cfg.requestProbability = 0.7;
        grid.push_back({"capacity_limited", cfg});
    }

    // Degenerate shapes and short memory: r = 1 makes completion and
    // transfer events collide on the same tick.
    {
        SystemConfig cfg = diffBase();
        cfg.numProcessors = 1;
        cfg.numModules = 5;
        cfg.memoryRatio = 1;
        cfg.requestProbability = 0.5;
        grid.push_back({"single_proc_r1", cfg});
    }
    {
        SystemConfig cfg = diffBase();
        cfg.numProcessors = 7;
        cfg.numModules = 1;
        cfg.memoryRatio = 2;
        cfg.requestProbability = 0.8;
        cfg.policy = ArbitrationPolicy::MemoryPriority;
        grid.push_back({"single_module_memprio", cfg});
    }

    // Silent system: p = 0 exercises the calendar with no RNG at all.
    {
        SystemConfig cfg = diffBase();
        cfg.requestProbability = 0.0;
        cfg.measureCycles = 5000;
        grid.push_back({"silent", cfg});
    }

    // Processor cycle > 63 ticks: the think calendar's bitmask cannot
    // represent the buckets, forcing the linear-scan fallback.
    {
        SystemConfig cfg = diffBase();
        cfg.memoryRatio = 70;
        cfg.numProcessors = 5;
        cfg.numModules = 4;
        cfg.requestProbability = 0.2;
        grid.push_back({"wide_cycle_mask_fallback", cfg});
    }

    return grid;
}

TEST(KernelGrid, PinnedClassicEraGrid)
{
    std::vector<GoldenLine> computed;
    for (const GridCase &c : diffGrid()) {
        const Metrics metrics = runOnce(c.config);
        computed.push_back(
            {c.name + " completed", exact(metrics.completedRequests)});
        computed.push_back(
            {c.name + " issued", exact(metrics.issuedRequests)});
        computed.push_back(
            {c.name + " busBusy", exact(metrics.busBusyCycles)});
        computed.push_back({c.name + " ebw", exact(metrics.ebw)});
        computed.push_back(
            {c.name + " meanWait", exact(metrics.meanWaitCycles)});
        computed.push_back({c.name + " waitVar",
                            exact(metrics.waitStats.variance())});
        if (metrics.waitHistogram.has_value())
            computed.push_back({c.name + " histCount",
                                exact(metrics.waitHistogram->count())});
    }
    checkExactGolden("kernel_metrics_grid", computed);
}

/** Same config + seed must reproduce Metrics exactly, field by field. */
TEST(KernelGrid, RunsAreDeterministic)
{
    for (const GridCase &c : diffGrid()) {
        const Metrics a = runOnce(c.config);
        const Metrics b = runOnce(c.config);
        EXPECT_EQ(a.completedRequests, b.completedRequests) << c.name;
        EXPECT_EQ(a.busBusyCycles, b.busBusyCycles) << c.name;
        EXPECT_EQ(a.ebw, b.ebw) << c.name;
        EXPECT_EQ(a.meanWaitCycles, b.meanWaitCycles) << c.name;
        EXPECT_EQ(a.perProcessorCompletions, b.perProcessorCompletions)
            << c.name;
    }
}

/**
 * The cycle-skipping calendar's reason to exist: in the low-p regime
 * thinking must not cost heap events. The bound (0.5 events/cycle)
 * is ~40% above the measured 0.36 for this shape; the Classic kernel
 * sat at ~2 events/cycle.
 */
TEST(KernelGridExtras, LowPHeapEventsStaySparse)
{
    SystemConfig cfg = diffBase();
    cfg.requestProbability = 0.05;
    cfg.numProcessors = 16;
    cfg.numModules = 16;
    cfg.warmupCycles = 0;
    cfg.measureCycles = 50000;

    SingleBusSystem system(cfg);
    (void)system.run();

    EXPECT_GT(system.thinkDraws(), 0u);
    const double events_per_cycle =
        static_cast<double>(system.heapEventsExecuted()) /
        static_cast<double>(cfg.measureCycles);
    EXPECT_LT(events_per_cycle, 0.5);
}

TEST(KernelGridExtras, SteadyStateArbitrationDoesNotReallocate)
{
    // collectPerModule covers both states: the per-module scratch
    // (pre-sized at construction, part of scratchCapacities()) and
    // telemetry flushes (disabled by default: no-op branches) must
    // stay allocation-free through the inner loop either way.
    for (bool per_module : {false, true}) {
        for (bool buffered : {false, true}) {
            SystemConfig cfg = diffBase();
            cfg.buffered = buffered;
            cfg.requestProbability = 0.6;
            cfg.numProcessors = 24;
            cfg.numModules = 6;
            cfg.measureCycles = 20000;
            cfg.collectPerModule = per_module;

            SingleBusSystem system(cfg);
            const auto before = system.scratchCapacities();
            (void)system.run();
            EXPECT_EQ(before, system.scratchCapacities())
                << "scratch container reallocated during run "
                << "(buffered=" << buffered
                << " perModule=" << per_module << ")";
        }
    }
}

} // namespace
} // namespace sbn
