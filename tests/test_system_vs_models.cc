/**
 * @file
 * Cross-validation of the cycle-accurate simulator against the
 * paper's analytical models and published tables - the core
 * correctness evidence for the reproduction.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "analytic/memprio.hh"
#include "analytic/mva.hh"
#include "analytic/procprio.hh"
#include "core/experiment.hh"

namespace sbn {
namespace {

SystemConfig
simConfig(int n, int m, int r, ArbitrationPolicy policy, bool buffered)
{
    SystemConfig cfg;
    cfg.numProcessors = n;
    cfg.numModules = m;
    cfg.memoryRatio = r;
    cfg.policy = policy;
    cfg.buffered = buffered;
    cfg.warmupCycles = 10000;
    cfg.measureCycles = 300000;
    return cfg;
}

TEST(SimVsModels, MemoryPriorityTracksExactChain)
{
    // The Section 3.1.1 chain abstracts the bus into service rounds
    // (at most r+1 injections per processor cycle, re-issues join the
    // next round); the cycle-accurate machine lets early-serviced
    // processors slip back in mid-round, so the simulator sits
    // slightly ABOVE the chain: within +3% and never more than ~0.5%
    // below.
    for (int n : {2, 4, 8}) {
        for (int m : {2, 4, 8}) {
            for (int r : {2, 5, 9}) {
                const double sim = runEbw(simConfig(
                    n, m, r, ArbitrationPolicy::MemoryPriority, false));
                const double exact = memprioExactEbw(n, m, r);
                EXPECT_LT(sim / exact, 1.03)
                    << "n=" << n << " m=" << m << " r=" << r;
                EXPECT_GT(sim / exact, 0.995)
                    << "n=" << n << " m=" << m << " r=" << r;
            }
        }
    }
}

TEST(SimVsModels, ProcessorPriorityTracksReducedChain)
{
    // Section 5 claims <= ~5% model-vs-sim disagreement; hold our
    // pair to 7% across a grid wider than Table 3.
    for (int m : {4, 8, 16}) {
        for (int r : {2, 6, 12}) {
            const double sim = runEbw(simConfig(
                8, m, r, ArbitrationPolicy::ProcessorPriority, false));
            ProcPrioChain chain(8, m, r);
            EXPECT_NEAR(sim / chain.ebw(), 1.0, 0.07)
                << "m=" << m << " r=" << r;
        }
    }
}

TEST(SimVsModels, ProcessorPriorityBeatsMemoryPriority)
{
    // Section 3 finding: policy g' (processors first) yields higher
    // EBW than g'' (memories first).
    for (int m : {4, 8, 16}) {
        for (int r : {4, 8}) {
            const double proc = runEbw(simConfig(
                8, m, r, ArbitrationPolicy::ProcessorPriority, false));
            const double mem = runEbw(simConfig(
                8, m, r, ArbitrationPolicy::MemoryPriority, false));
            EXPECT_GE(proc, mem * 0.999) << "m=" << m << " r=" << r;
        }
    }
}

TEST(SimVsModels, Table3aSimulationCells)
{
    // Paper Table 3a (simulation, processor priority, n=8): spot rows
    // m=4 and m=16. Tolerance covers both samplings' noise; the
    // paper's m=4, r=8 cell (3.287) is excluded as it is inconsistent
    // with its own neighbours (3.155 @ r=6, 3.205 @ r=10).
    const struct { int m, r; double paper; } cells[] = {
        {4, 2, 1.998},  {4, 4, 2.867},  {4, 6, 3.155},  {4, 10, 3.205},
        {4, 12, 3.220}, {16, 2, 2.000}, {16, 4, 3.000}, {16, 6, 4.000},
        {16, 8, 4.977}, {16, 10, 5.698}, {16, 12, 5.959},
    };
    for (const auto &c : cells) {
        const double sim = runEbw(simConfig(
            8, c.m, c.r, ArbitrationPolicy::ProcessorPriority, false));
        EXPECT_NEAR(sim / c.paper, 1.0, 0.02)
            << "m=" << c.m << " r=" << c.r << " sim=" << sim;
    }
}

TEST(SimVsModels, Table4BufferedCells)
{
    // Paper Table 4 (buffered, processor priority, n=8): spot checks
    // across the grid corners and interior.
    const struct { int m, r; double paper; } cells[] = {
        {4, 6, 3.915},   {4, 14, 3.661},  {4, 24, 3.499},
        {6, 8, 4.747},   {8, 10, 5.312},  {10, 16, 5.709},
        {12, 14, 6.020}, {14, 8, 4.998},  {16, 12, 6.325},
        {16, 24, 6.410},
    };
    for (const auto &c : cells) {
        const double sim = runEbw(simConfig(
            8, c.m, c.r, ArbitrationPolicy::ProcessorPriority, true));
        EXPECT_NEAR(sim / c.paper, 1.0, 0.02)
            << "m=" << c.m << " r=" << c.r << " sim=" << sim;
    }
}

TEST(SimVsModels, BufferingNeverHurts)
{
    for (int m : {4, 8, 16}) {
        for (int r : {2, 8, 16}) {
            const double plain = runEbw(simConfig(
                8, m, r, ArbitrationPolicy::ProcessorPriority, false));
            const double buffered = runEbw(simConfig(
                8, m, r, ArbitrationPolicy::ProcessorPriority, true));
            EXPECT_GE(buffered, plain * 0.995)
                << "m=" << m << " r=" << r;
        }
    }
}

TEST(SimVsModels, ExponentialModelIsPessimistic)
{
    // Section 6: characterizing the constant bus/memory service times
    // as exponentials (the product-form network, solved exactly by
    // MVA) mispredicts EBW pessimistically, with discrepancies
    // exceeding 25% (relative to the exponential model's value at the
    // balanced-bottleneck corner n=4, m=2, r=4, where bus and memory
    // rates coincide and queueing variance matters most).
    for (const auto &[n, m, r] :
         {std::array{4, 2, 4}, std::array{8, 4, 8},
          std::array{16, 4, 8}}) {
        const double sim = runEbw(simConfig(
            n, m, r, ArbitrationPolicy::ProcessorPriority, true));
        const double expo = mvaBufferedBus(n, m, r).ebw;
        EXPECT_LT(expo, sim) << "n=" << n << " m=" << m << " r=" << r;
    }
    const double sim = runEbw(
        simConfig(4, 2, 4, ArbitrationPolicy::ProcessorPriority, true));
    const double expo = mvaBufferedBus(4, 2, 4).ebw;
    EXPECT_GT((sim - expo) / expo, 0.24);
}

TEST(SimVsModels, ExponentialGapClosesWhenUncongested)
{
    // With light load the distributional assumption matters little.
    SystemConfig cfg =
        simConfig(2, 16, 4, ArbitrationPolicy::ProcessorPriority, true);
    const double sim = runEbw(cfg);
    const double expo = mvaBufferedBus(2, 16, 4).ebw;
    EXPECT_NEAR(expo / sim, 1.0, 0.12);
}

} // namespace
} // namespace sbn
