/**
 * @file
 * FastStat kernel validation: statistical equivalence to the exact
 * CycleSkip kernel, analytic anchors, determinism, and the structural
 * properties (O(1) think draws, fingerprint separation) the kernel's
 * design promises.
 *
 * FastStat is deliberately not bit-compatible with CycleSkip, so the
 * regression net here is the CI-overlap procedure of
 * stats/equivalence.hh: K replications of each kernel per
 * configuration (seeds fixed, so every verdict is deterministic) must
 * produce overlapping 95% confidence intervals on EBW. A non-overlap
 * is strong evidence the two kernels simulate different processes -
 * correctness, not noise (docs/testing.md "Statistical equivalence").
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/faststat.hh"
#include "core/fingerprint.hh"
#include "core/system.hh"
#include "stats/equivalence.hh"
#include "workload/analytic.hh"

namespace sbn {
namespace {

/** Replications per kernel per grid point. */
constexpr int kReps = 8;

SystemConfig
baseConfig()
{
    SystemConfig cfg;
    cfg.numProcessors = 8;
    cfg.numModules = 8;
    cfg.memoryRatio = 8;
    cfg.requestProbability = 1.0;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 30000;
    cfg.seed = 1;
    return cfg;
}

/** K replication EBWs of one kernel (seeds 1..K, deterministic). */
std::vector<double>
ebwSamples(SystemConfig cfg, KernelKind kind)
{
    cfg.kernel = kind;
    std::vector<double> out;
    out.reserve(kReps);
    for (int rep = 0; rep < kReps; ++rep) {
        cfg.seed = static_cast<std::uint64_t>(rep + 1);
        out.push_back(runEbw(cfg));
    }
    return out;
}

void
expectEquivalent(const SystemConfig &cfg, const std::string &label)
{
    const auto exact = ebwSamples(cfg, KernelKind::CycleSkip);
    const auto fast = ebwSamples(cfg, KernelKind::FastStat);
    const EquivalenceResult result = ciOverlapTest(exact, fast);
    EXPECT_TRUE(result.overlap)
        << label << ": " << result.describe();
}

// --------------------------------------- CI-overlap equivalence grid

TEST(FastStatEquivalence, SaturatedUnbuffered)
{
    expectEquivalent(baseConfig(), "saturated n=8 m=8 r=8");
}

TEST(FastStatEquivalence, LowRequestProbability)
{
    SystemConfig cfg = baseConfig();
    cfg.requestProbability = 0.1;
    expectEquivalent(cfg, "low p=0.1");
    cfg.requestProbability = 0.02;
    expectEquivalent(cfg, "very low p=0.02");
}

TEST(FastStatEquivalence, PolicyAndSelectionVariants)
{
    SystemConfig cfg = baseConfig();
    cfg.requestProbability = 0.5;
    cfg.policy = ArbitrationPolicy::MemoryPriority;
    expectEquivalent(cfg, "memory priority");
    cfg.policy = ArbitrationPolicy::ProcessorPriority;
    cfg.selection = SelectionRule::OldestFirst;
    expectEquivalent(cfg, "oldest-first selection");
}

TEST(FastStatEquivalence, AsymmetricShapes)
{
    SystemConfig cfg = baseConfig();
    cfg.numProcessors = 4;
    cfg.numModules = 16;
    cfg.requestProbability = 0.7;
    expectEquivalent(cfg, "n=4 m=16");
    cfg.numProcessors = 16;
    cfg.numModules = 4;
    expectEquivalent(cfg, "n=16 m=4");
}

TEST(FastStatEquivalence, Buffered)
{
    SystemConfig cfg = baseConfig();
    cfg.buffered = true;
    cfg.requestProbability = 0.5;
    expectEquivalent(cfg, "buffered unbounded");
}

TEST(FastStatEquivalence, BufferedCapacityLimited)
{
    SystemConfig cfg = baseConfig();
    cfg.buffered = true;
    cfg.inputCapacity = 2;
    cfg.outputCapacity = 1;
    expectEquivalent(cfg, "buffered capacity in=2 out=1");
}

TEST(FastStatEquivalence, HotSpotWorkload)
{
    SystemConfig cfg = baseConfig();
    cfg.workload.pattern = ReferencePattern::HotSpot;
    cfg.workload.hotFraction = 0.4;
    cfg.workload.hotModule = 2;
    expectEquivalent(cfg, "hotspot h=0.4");
}

TEST(FastStatEquivalence, WeightedWorkload)
{
    SystemConfig cfg = baseConfig();
    cfg.workload.pattern = ReferencePattern::Weighted;
    cfg.workload.moduleWeights.assign(
        static_cast<std::size_t>(cfg.numModules), 1.0);
    cfg.workload.moduleWeights[0] = 4.0;
    expectEquivalent(cfg, "weighted 4:1");
}

TEST(FastStatEquivalence, FavoriteWorkload)
{
    SystemConfig cfg = baseConfig();
    cfg.workload.pattern = ReferencePattern::Favorite;
    cfg.workload.favoriteFraction = 0.5;
    cfg.requestProbability = 0.6;
    expectEquivalent(cfg, "favorite f=0.5");
}

TEST(FastStatEquivalence, TwoClassThink)
{
    SystemConfig cfg = baseConfig();
    cfg.workload.think = ThinkModel::TwoClass;
    cfg.workload.fastCount = 4;
    cfg.workload.fastProbability = 1.0;
    cfg.workload.slowProbability = 0.1;
    expectEquivalent(cfg, "two-class 4 fast / 4 slow");
}

// -------------------------------------------------- analytic anchors

/**
 * At p = 1 under MemoryPriority the exact occupancy-chain solution is
 * available; FastStat must land on it with the same finite-window
 * bias band the exact kernel is held to (test_workload.cc).
 */
TEST(FastStatAnalytic, MatchesExactMemprioEbw)
{
    // Small shapes only: the weighted occupancy-chain solver guards
    // against the state-space blowup past n = m = 4 (analytic.cc).
    for (const int n : {2, 4}) {
        for (const int r : {2, 8}) {
            SystemConfig cfg = baseConfig();
            cfg.numProcessors = n;
            cfg.numModules = n;
            cfg.memoryRatio = r;
            cfg.policy = ArbitrationPolicy::MemoryPriority;
            cfg.warmupCycles = 10000;
            cfg.measureCycles = 300000;
            cfg.kernel = KernelKind::FastStat;

            const double sim = runEbw(cfg);
            const double exact_ebw =
                workloadExactMemprioEbw(n, n, r, WorkloadConfig{});
            EXPECT_LT(sim / exact_ebw, 1.04)
                << "n=" << n << " r=" << r;
            EXPECT_GT(sim / exact_ebw, 0.99)
                << "n=" << n << " r=" << r;
        }
    }
}

// ---------------------------------------------------- reproducibility

/** Same config -> bit-identical metrics, every time. */
TEST(FastStatDeterminism, RepeatedRunsAreIdentical)
{
    SystemConfig cfg = baseConfig();
    cfg.kernel = KernelKind::FastStat;
    cfg.workload.pattern = ReferencePattern::HotSpot;
    cfg.workload.hotFraction = 0.3;

    const Metrics a = runOnce(cfg);
    const Metrics b = runOnce(cfg);
    EXPECT_EQ(a.completedRequests, b.completedRequests);
    EXPECT_EQ(a.issuedRequests, b.issuedRequests);
    EXPECT_EQ(a.busBusyCycles, b.busBusyCycles);
    EXPECT_EQ(a.ebw, b.ebw);
    EXPECT_EQ(a.meanWaitCycles, b.meanWaitCycles);
    EXPECT_EQ(a.meanServiceCycles, b.meanServiceCycles);
    EXPECT_EQ(a.perProcessorCompletions, b.perProcessorCompletions);
}

/** Different seeds must re-key every stream (different trajectory). */
TEST(FastStatDeterminism, SeedChangesTrajectory)
{
    SystemConfig cfg = baseConfig();
    cfg.kernel = KernelKind::FastStat;
    const Metrics a = runOnce(cfg);
    cfg.seed = 2;
    const Metrics b = runOnce(cfg);
    EXPECT_NE(a.completedRequests, b.completedRequests);
}

// ------------------------------------------------ structural claims

/**
 * The kernel's O(1) think-interval contract: at low p the exact
 * kernel performs one Bernoulli per processor cycle while FastStat
 * draws one geometric per interval, so FastStat's draw count must be
 * a small fraction of CycleSkip's.
 */
TEST(FastStatStructure, GeometricThinkBatching)
{
    SystemConfig cfg = baseConfig();
    cfg.requestProbability = 0.05;

    cfg.kernel = KernelKind::FastStat;
    FastStatSystem fast(cfg);
    fast.run();

    cfg.kernel = KernelKind::CycleSkip;
    SingleBusSystem exact(cfg);
    exact.run();

    EXPECT_LT(fast.thinkDraws() * 5, exact.thinkDraws())
        << "fast=" << fast.thinkDraws()
        << " exact=" << exact.thinkDraws();
}

/**
 * Kernel choice is part of the config identity: FastStat results can
 * never merge with (or satisfy a resume of) an exact-kernel sweep.
 * CycleSkip must keep the fingerprint it had before the kernel field
 * existed, so every golden pin stays valid.
 */
TEST(FastStatStructure, KernelChangesConfigFingerprint)
{
    SystemConfig cfg = baseConfig();
    cfg.kernel = KernelKind::CycleSkip;
    const std::uint64_t exact_fp = configFingerprint(cfg);
    cfg.kernel = KernelKind::FastStat;
    const std::uint64_t fast_fp = configFingerprint(cfg);
    EXPECT_NE(exact_fp, fast_fp);
}

} // namespace
} // namespace sbn
