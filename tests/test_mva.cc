/**
 * @file
 * Tests for the exact MVA solver of the exponential (product-form)
 * model of the buffered bus (paper Section 6).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analytic/mva.hh"

namespace sbn {
namespace {

TEST(Mva, SingleCustomerClosedForm)
{
    // One customer never queues: cycle = 2*1 + r, X = 1/(r+2),
    // EBW = 1 for any m.
    for (int r : {1, 4, 16}) {
        for (int m : {1, 4, 8}) {
            const auto res = mvaBufferedBus(1, m, r);
            EXPECT_NEAR(res.throughput, 1.0 / (r + 2), 1e-12);
            EXPECT_NEAR(res.ebw, 1.0, 1e-12);
            EXPECT_NEAR(res.responseTime, r + 2.0, 1e-12);
        }
    }
}

TEST(Mva, UtilizationLaws)
{
    // Utilization must follow from throughput by the utilization law
    // and stay below 1 at every station.
    for (int n : {1, 4, 8, 16}) {
        const auto res = mvaBufferedBus(n, 8, 10);
        EXPECT_NEAR(res.busUtilization, 2.0 * res.throughput, 1e-12);
        EXPECT_NEAR(res.moduleUtilization, 10.0 * res.throughput / 8.0,
                    1e-12);
        EXPECT_LT(res.busUtilization, 1.0 + 1e-9);
        EXPECT_LT(res.moduleUtilization, 1.0 + 1e-9);
    }
}

TEST(Mva, LittleLawAtTheBus)
{
    const auto res = mvaBufferedBus(6, 4, 8);
    // Q_bus = X * V_bus * R_bus and response aggregates consistently:
    // N = X * (response) since think time is zero at p=1.
    EXPECT_NEAR(res.throughput * res.responseTime, 6.0, 1e-9);
}

TEST(Mva, ThroughputMonotoneInCustomers)
{
    double prev = 0.0;
    for (int n = 1; n <= 20; ++n) {
        const auto res = mvaBufferedBus(n, 6, 9);
        EXPECT_GE(res.throughput, prev - 1e-12) << "n=" << n;
        prev = res.throughput;
    }
}

TEST(Mva, BottleneckAsymptotes)
{
    // Large population: throughput saturates at the bottleneck
    // service rate: min(bus 1/2, memory m/r).
    {
        // Memory-bound: m/r = 4/40 << 1/2. Convergence is slow in n
        // because the load spreads over 4 memory queues.
        const auto res = mvaBufferedBus(256, 4, 40);
        EXPECT_NEAR(res.throughput, 4.0 / 40.0, 2e-3);
    }
    {
        // Bus-bound: 1/2 << m/r = 16/4.
        const auto res = mvaBufferedBus(64, 16, 4);
        EXPECT_NEAR(res.throughput, 0.5, 2e-3);
    }
}

TEST(Mva, EbwCapsAtTheoreticalMax)
{
    for (int n : {4, 8, 32}) {
        for (int r : {2, 8, 20}) {
            const auto res = mvaBufferedBus(n, 8, r);
            EXPECT_LE(res.ebw, (r + 2) / 2.0 + 1e-9);
        }
    }
}

TEST(Mva, ThinkTimeReducesLoad)
{
    const auto busy = mvaBufferedBus(8, 8, 8, 1.0);
    const auto relaxed = mvaBufferedBus(8, 8, 8, 0.5);
    EXPECT_LT(relaxed.ebw, busy.ebw);
    EXPECT_GT(relaxed.ebw, 0.0);
    // At p -> small the system is never congested: EBW -> n*p.
    const auto light = mvaBufferedBus(8, 8, 8, 0.05);
    EXPECT_NEAR(light.ebw / (8 * 0.05), 1.0, 0.06);
}

TEST(Mva, TwoStationHandSolvedNetwork)
{
    // n=2, m=1, r=2: stations bus (S=1, V=2) and memory (S=2, V=1).
    // MVA by hand:
    //  N=1: Rb=1, Rm=2, resp=2*1+2=4, X=1/4, Qb=1/2, Qm=1/2.
    //  N=2: Rb=1.5, Rm=3, resp=2*1.5+3=6, X=1/3, Qb=1, Qm=1.
    const auto res = mvaBufferedBus(2, 1, 2);
    EXPECT_NEAR(res.throughput, 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(res.busQueueLength, 1.0, 1e-12);
    EXPECT_NEAR(res.moduleQueueLength, 1.0, 1e-12);
    EXPECT_NEAR(res.ebw, 4.0 / 3.0, 1e-12);
}

} // namespace
} // namespace sbn
