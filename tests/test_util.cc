/**
 * @file
 * Tests for the text-table formatter and the CLI option parser.
 */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <vector>

#include "util/cli.hh"
#include "util/index_set.hh"
#include "util/table.hh"

namespace sbn {
namespace {

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t("Demo");
    t.setHeader({"m", "r=2", "r=4"});
    t.addNumericRow("4", {1.998, 2.867});
    t.addNumericRow("16", {2.0, 3.0});

    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Demo"), std::string::npos);
    EXPECT_NE(out.find("r=2"), std::string::npos);
    EXPECT_NE(out.find("1.998"), std::string::npos);
    EXPECT_NE(out.find("3.000"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, CsvOutput)
{
    TextTable t("title");
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "# title\na,b\n1,2\n");
}

TEST(TextTable, FormatNumberPrecision)
{
    EXPECT_EQ(TextTable::formatNumber(1.23456, 3), "1.235");
    EXPECT_EQ(TextTable::formatNumber(2.0, 1), "2.0");
    EXPECT_EQ(TextTable::formatNumber(-0.5, 2), "-0.50");
}

TEST(TextTable, ColumnsAligned)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);

    // All data lines must have equal length (fixed-width columns).
    std::istringstream is(os.str());
    std::string line;
    std::size_t width = 0;
    while (std::getline(is, line)) {
        if (line.find_first_not_of('-') == std::string::npos)
            continue;
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width) << "line: " << line;
    }
}

const std::map<std::string, std::string> kKnown = {
    {"n", "processors"},  {"m", "modules"}, {"r", "ratio"},
    {"p", "probability"}, {"buffered", "flag"}, {"rs", "list"},
    {"name", "string"},
};

CommandLine
parse(std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "prog");
    return CommandLine(static_cast<int>(argv.size()), argv.data(),
                       kKnown);
}

TEST(CommandLine, EqualsAndSpaceForms)
{
    const auto cli = parse({"--n=8", "--m", "16"});
    EXPECT_EQ(cli.getInt("n", 0), 8);
    EXPECT_EQ(cli.getInt("m", 0), 16);
    EXPECT_EQ(cli.getInt("r", 7), 7); // default
}

TEST(CommandLine, TypedAccessors)
{
    const auto cli =
        parse({"--p=0.25", "--buffered", "--name=hello"});
    EXPECT_DOUBLE_EQ(cli.getDouble("p", 1.0), 0.25);
    EXPECT_TRUE(cli.getBool("buffered", false));
    EXPECT_FALSE(cli.getBool("n", false));
    EXPECT_EQ(cli.getString("name", ""), "hello");
    EXPECT_TRUE(cli.has("p"));
    EXPECT_FALSE(cli.has("r"));
}

TEST(CommandLine, IntegerLists)
{
    const auto cli = parse({"--rs=2,4,8,16"});
    const auto rs = cli.getIntList("rs", {});
    ASSERT_EQ(rs.size(), 4u);
    EXPECT_EQ(rs[0], 2);
    EXPECT_EQ(rs[3], 16);

    const auto def = cli.getIntList("n", {1, 2});
    EXPECT_EQ(def.size(), 2u);
}

TEST(CommandLine, ExplicitBooleanValues)
{
    const auto cli = parse({"--buffered=false"});
    EXPECT_FALSE(cli.getBool("buffered", true));
}

TEST(CommandLineDeath, UnknownOptionIsFatal)
{
    EXPECT_DEATH((void)parse({"--bogus=1"}), "unknown option");
}

TEST(CommandLineDeath, BadIntegerIsFatal)
{
    const auto cli = parse({"--n=abc"});
    EXPECT_DEATH((void)cli.getInt("n", 0), "expects an integer");
}

TEST(CommandLineDeath, IntegerOverflowIsFatal)
{
    // strtoll clamps an overflowing value to INT64_MAX/INT64_MIN and
    // reports it only via errno=ERANGE; without the check a
    // "--n 99999999999999999999" silently becomes INT64_MAX and
    // passes validation.
    const auto cli = parse({"--n=99999999999999999999"});
    EXPECT_DEATH((void)cli.getInt("n", 0), "integer out of range");
    const auto negative = parse({"--n=-99999999999999999999"});
    EXPECT_DEATH((void)negative.getInt("n", 0),
                 "integer out of range");
}

TEST(CommandLineDeath, IntegerListOverflowIsFatal)
{
    const auto cli = parse({"--rs=2,99999999999999999999,8"});
    EXPECT_DEATH((void)cli.getIntList("rs", {}),
                 "integer out of range");
}

TEST(CommandLineDeath, DoubleOverflowIsFatal)
{
    // strtod's overflow result is +-HUGE_VAL with errno=ERANGE, which
    // previously sailed through as a perfectly legal double.
    const auto cli = parse({"--p=1e999"});
    EXPECT_DEATH((void)cli.getDouble("p", 0.0),
                 "number out of range");
}

TEST(CommandLineDeath, DoubleListOverflowIsFatal)
{
    const auto cli = parse({"--p=0.5,-1e999"});
    EXPECT_DEATH((void)cli.getDoubleList("p", {}),
                 "number out of range");
}

TEST(CommandLine, ExtremeButRepresentableValuesSurvive)
{
    // The ERANGE check must reject only what the type cannot hold.
    const auto cli =
        parse({"--n=9223372036854775807", "--p=1e308"});
    EXPECT_EQ(cli.getInt("n", 0),
              std::numeric_limits<std::int64_t>::max());
    EXPECT_DOUBLE_EQ(cli.getDouble("p", 0.0), 1e308);
}

TEST(CommandLine, DoubleLists)
{
    const auto cli = parse({"--p=0.1,0.5,1"});
    const auto ps = cli.getDoubleList("p", {});
    ASSERT_EQ(ps.size(), 3u);
    EXPECT_DOUBLE_EQ(ps[0], 0.1);
    EXPECT_DOUBLE_EQ(ps[2], 1.0);
    const auto def = cli.getDoubleList("n", {0.25});
    ASSERT_EQ(def.size(), 1u);
    EXPECT_DOUBLE_EQ(def[0], 0.25);
}

TEST(CommandLineDeath, RepeatedOptionIsFatal)
{
    // A repeated option (e.g. a sweep axis named twice) must not
    // silently drop the first value.
    EXPECT_DEATH((void)parse({"--n=4", "--n=8"}), "given twice");
}

TEST(CommandLineDeath, EmptyAndBlankListsAreFatal)
{
    EXPECT_DEATH((void)parse({"--rs="}).getIntList("rs", {}),
                 "empty list element");
    EXPECT_DEATH((void)parse({"--rs=2,,8"}).getIntList("rs", {}),
                 "empty list element");
    EXPECT_DEATH((void)parse({"--rs=2,4,"}).getIntList("rs", {}),
                 "empty list element");
    EXPECT_DEATH((void)parse({"--p=,"}).getDoubleList("p", {}),
                 "empty list element");
}

TEST(IndexSet, InsertEraseContainsCount)
{
    IndexSet set(130); // spans three words
    EXPECT_TRUE(set.empty());
    EXPECT_TRUE(set.insert(0));
    EXPECT_TRUE(set.insert(65));
    EXPECT_TRUE(set.insert(129));
    EXPECT_FALSE(set.insert(65)); // already present
    EXPECT_EQ(set.count(), 3u);
    EXPECT_TRUE(set.contains(65));
    EXPECT_FALSE(set.contains(64));
    EXPECT_TRUE(set.erase(65));
    EXPECT_FALSE(set.erase(65));
    EXPECT_EQ(set.count(), 2u);
}

TEST(IndexSet, NthAndForEachAscend)
{
    IndexSet set(200);
    const std::vector<std::size_t> members{3, 7, 64, 65, 190};
    for (auto i : {65, 3, 190, 7, 64}) // insertion order irrelevant
        set.insert(static_cast<std::size_t>(i));

    for (std::size_t k = 0; k < members.size(); ++k)
        EXPECT_EQ(set.nth(k), members[k]) << "k=" << k;

    std::vector<std::size_t> visited;
    set.forEach([&](std::size_t i) { visited.push_back(i); });
    EXPECT_EQ(visited, members);
}

TEST(IndexSet, BulkUnionAndDifferenceTrackCounts)
{
    IndexSet a(100), b(100);
    for (auto i : {1, 50, 99})
        a.insert(static_cast<std::size_t>(i));
    for (auto i : {50, 60})
        b.insert(static_cast<std::size_t>(i));

    a.insertAll(b); // {1, 50, 60, 99}
    EXPECT_EQ(a.count(), 4u);
    EXPECT_TRUE(a.contains(60));

    a.eraseAll(b); // {1, 99}
    EXPECT_EQ(a.count(), 2u);
    EXPECT_FALSE(a.contains(50));
    EXPECT_FALSE(a.contains(60));
    EXPECT_TRUE(a.contains(1));
    EXPECT_TRUE(a.contains(99));

    a.clear();
    EXPECT_TRUE(a.empty());
}

} // namespace
} // namespace sbn
