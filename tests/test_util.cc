/**
 * @file
 * Tests for the text-table formatter and the CLI option parser.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "util/cli.hh"
#include "util/table.hh"

namespace sbn {
namespace {

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t("Demo");
    t.setHeader({"m", "r=2", "r=4"});
    t.addNumericRow("4", {1.998, 2.867});
    t.addNumericRow("16", {2.0, 3.0});

    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("Demo"), std::string::npos);
    EXPECT_NE(out.find("r=2"), std::string::npos);
    EXPECT_NE(out.find("1.998"), std::string::npos);
    EXPECT_NE(out.find("3.000"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, CsvOutput)
{
    TextTable t("title");
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "# title\na,b\n1,2\n");
}

TEST(TextTable, FormatNumberPrecision)
{
    EXPECT_EQ(TextTable::formatNumber(1.23456, 3), "1.235");
    EXPECT_EQ(TextTable::formatNumber(2.0, 1), "2.0");
    EXPECT_EQ(TextTable::formatNumber(-0.5, 2), "-0.50");
}

TEST(TextTable, ColumnsAligned)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);

    // All data lines must have equal length (fixed-width columns).
    std::istringstream is(os.str());
    std::string line;
    std::size_t width = 0;
    while (std::getline(is, line)) {
        if (line.find_first_not_of('-') == std::string::npos)
            continue;
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width) << "line: " << line;
    }
}

const std::map<std::string, std::string> kKnown = {
    {"n", "processors"},  {"m", "modules"}, {"r", "ratio"},
    {"p", "probability"}, {"buffered", "flag"}, {"rs", "list"},
    {"name", "string"},
};

CommandLine
parse(std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "prog");
    return CommandLine(static_cast<int>(argv.size()), argv.data(),
                       kKnown);
}

TEST(CommandLine, EqualsAndSpaceForms)
{
    const auto cli = parse({"--n=8", "--m", "16"});
    EXPECT_EQ(cli.getInt("n", 0), 8);
    EXPECT_EQ(cli.getInt("m", 0), 16);
    EXPECT_EQ(cli.getInt("r", 7), 7); // default
}

TEST(CommandLine, TypedAccessors)
{
    const auto cli =
        parse({"--p=0.25", "--buffered", "--name=hello"});
    EXPECT_DOUBLE_EQ(cli.getDouble("p", 1.0), 0.25);
    EXPECT_TRUE(cli.getBool("buffered", false));
    EXPECT_FALSE(cli.getBool("n", false));
    EXPECT_EQ(cli.getString("name", ""), "hello");
    EXPECT_TRUE(cli.has("p"));
    EXPECT_FALSE(cli.has("r"));
}

TEST(CommandLine, IntegerLists)
{
    const auto cli = parse({"--rs=2,4,8,16"});
    const auto rs = cli.getIntList("rs", {});
    ASSERT_EQ(rs.size(), 4u);
    EXPECT_EQ(rs[0], 2);
    EXPECT_EQ(rs[3], 16);

    const auto def = cli.getIntList("n", {1, 2});
    EXPECT_EQ(def.size(), 2u);
}

TEST(CommandLine, ExplicitBooleanValues)
{
    const auto cli = parse({"--buffered=false"});
    EXPECT_FALSE(cli.getBool("buffered", true));
}

TEST(CommandLineDeath, UnknownOptionIsFatal)
{
    EXPECT_DEATH((void)parse({"--bogus=1"}), "unknown option");
}

TEST(CommandLineDeath, BadIntegerIsFatal)
{
    const auto cli = parse({"--n=abc"});
    EXPECT_DEATH((void)cli.getInt("n", 0), "expects an integer");
}

} // namespace
} // namespace sbn
