/**
 * @file
 * Tests for the opt-in per-module metric breakdowns
 * (config.collectPerModule) and the multibus baseline's per-bus
 * breakdown: golden pins of the per-module vectors, additivity
 * (enabling the breakdown changes no other field), internal
 * consistency with the aggregate counters, an analytic cross-check
 * against the weighted occupancy chain's moduleBusy, and the per-bus
 * busy-slot invariants.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "baselines/multibus_sim.hh"
#include "core/experiment.hh"
#include "golden_util.hh"
#include "workload/analytic.hh"

namespace sbn {
namespace {

using golden::GoldenLine;
using golden::checkExactGolden;
using golden::exact;

/**
 * Pin the per-module vectors on the same grid test_kernel_golden.cc
 * pins the aggregate Metrics on, so drift in the breakdown
 * accounting (a queue-depth off-by-one, a busy-cycle window clip)
 * fails with the offending config and module named.
 */
TEST(GoldenPerModule, CycleSkipPinnedGrid)
{
    std::vector<GoldenLine> computed;
    for (const int n : {2, 8}) {
        for (const int m : {2, 8}) {
            for (const int r : {2, 8}) {
                for (const double p : {0.1, 1.0}) {
                    for (const bool buffered : {false, true}) {
                        SystemConfig cfg;
                        cfg.numProcessors = n;
                        cfg.numModules = m;
                        cfg.memoryRatio = r;
                        cfg.requestProbability = p;
                        cfg.buffered = buffered;
                        cfg.warmupCycles = 500;
                        cfg.measureCycles = 5000;
                        cfg.seed = 20260727;
                        cfg.collectPerModule = true;

                        char label[64];
                        std::snprintf(label, sizeof label,
                                      "n=%d m=%d r=%d p=%.1f buf=%d",
                                      n, m, r, p, buffered ? 1 : 0);

                        const Metrics metrics = runOnce(cfg);
                        ASSERT_EQ(metrics.perModuleBusyCycles.size(),
                                  static_cast<std::size_t>(m));
                        for (int j = 0; j < m; ++j) {
                            char mod[96];
                            std::snprintf(mod, sizeof mod, "%s mod%d",
                                          label, j);
                            const std::string key = mod;
                            computed.push_back(
                                {key + " busy",
                                 exact(metrics
                                           .perModuleBusyCycles[j])});
                            computed.push_back(
                                {key + " qavg",
                                 exact(metrics
                                           .perModuleQueueDepthAvg
                                               [j])});
                            computed.push_back(
                                {key + " qmax",
                                 exact(metrics
                                           .perModuleQueueDepthMax
                                               [j])});
                        }
                    }
                }
            }
        }
    }
    checkExactGolden("permodule_metrics", computed);
}

/**
 * The breakdown is additive: enabling it must not change any other
 * field (same RNG stream, same grant decisions), and with it off the
 * vectors stay empty.
 */
TEST(PerModule, EnablingChangesNoOtherField)
{
    for (const bool buffered : {false, true}) {
        SystemConfig cfg;
        cfg.numProcessors = 6;
        cfg.numModules = 4;
        cfg.memoryRatio = 4;
        cfg.requestProbability = 0.7;
        cfg.buffered = buffered;
        cfg.warmupCycles = 500;
        cfg.measureCycles = 20000;
        cfg.seed = 99;

        const Metrics off = runOnce(cfg);
        EXPECT_TRUE(off.perModuleBusyCycles.empty());
        EXPECT_TRUE(off.perModuleUtilization.empty());
        EXPECT_TRUE(off.perModuleQueueDepthAvg.empty());
        EXPECT_TRUE(off.perModuleQueueDepthMax.empty());

        cfg.collectPerModule = true;
        const Metrics on = runOnce(cfg);
        EXPECT_EQ(on.completedRequests, off.completedRequests);
        EXPECT_EQ(on.issuedRequests, off.issuedRequests);
        EXPECT_EQ(on.busBusyCycles, off.busBusyCycles);
        EXPECT_EQ(on.ebw, off.ebw);
        EXPECT_EQ(on.meanWaitCycles, off.meanWaitCycles);
        EXPECT_EQ(on.meanServiceCycles, off.meanServiceCycles);
        EXPECT_EQ(on.meanModuleUtilization, off.meanModuleUtilization);
        ASSERT_EQ(on.perModuleBusyCycles.size(), 4u);
        ASSERT_EQ(on.perModuleUtilization.size(), 4u);
        ASSERT_EQ(on.perModuleQueueDepthAvg.size(), 4u);
        ASSERT_EQ(on.perModuleQueueDepthMax.size(), 4u);
    }
}

/** Per-module utilizations must average to meanModuleUtilization and
 *  derive exactly from the busy-cycle counts - in both kernels. */
TEST(PerModule, UtilizationConsistentWithAggregate)
{
    for (const KernelKind kernel :
         {KernelKind::CycleSkip, KernelKind::FastStat}) {
        for (const bool buffered : {false, true}) {
            SystemConfig cfg;
            cfg.kernel = kernel;
            cfg.numProcessors = 8;
            cfg.numModules = 5;
            cfg.memoryRatio = 3;
            cfg.requestProbability = 0.8;
            cfg.buffered = buffered;
            cfg.warmupCycles = 1000;
            cfg.measureCycles = 50000;
            cfg.seed = 7;
            cfg.collectPerModule = true;

            const Metrics m = runOnce(cfg);
            ASSERT_EQ(m.perModuleUtilization.size(), 5u);
            double sum = 0.0;
            for (int j = 0; j < 5; ++j) {
                EXPECT_DOUBLE_EQ(
                    m.perModuleUtilization[j],
                    static_cast<double>(m.perModuleBusyCycles[j]) /
                        static_cast<double>(m.measuredCycles));
                sum += m.perModuleUtilization[j];
            }
            EXPECT_NEAR(sum / 5.0, m.meanModuleUtilization, 1e-12)
                << "kernel=" << static_cast<int>(kernel)
                << " buffered=" << buffered;
        }
    }
}

/**
 * Analytic cross-check: under the weighted occupancy chain's
 * hypotheses (memory-priority bus, p = 1), the sim's per-module
 * access-cycle *shares* track the chain's stationary moduleBusy
 * shares. The quantities differ in kind - the chain's moduleBusy is
 * P(module occupied), the sim counts in-access cycles - but every
 * access occupies a module for the same r cycles, so throughput
 * shares (and hence busy-cycle shares) must agree. Empirically the
 * share ratio sits within ~2% at these run lengths; 4% is asserted,
 * the same tolerance band the EBW-level chain-vs-sim test uses.
 */
TEST(PerModuleVsChain, HotSpotSharesTrackModuleBusy)
{
    for (const double hot : {0.3, 0.6}) {
        SystemConfig cfg;
        cfg.numProcessors = 4;
        cfg.numModules = 4;
        cfg.memoryRatio = 5;
        cfg.policy = ArbitrationPolicy::MemoryPriority;
        cfg.warmupCycles = 10000;
        cfg.measureCycles = 300000;
        cfg.collectPerModule = true;
        WorkloadConfig workload;
        workload.pattern = ReferencePattern::HotSpot;
        workload.hotFraction = hot;
        cfg.workload = workload;

        const Metrics metrics = runOnce(cfg);
        const WeightedChainResult chain = solveWeightedOccupancyChain(
            cfg.numProcessors, cfg.numModules, cfg.memoryRatio + 1,
            workload.moduleProbabilities(0, cfg.numModules));

        ASSERT_EQ(metrics.perModuleUtilization.size(), 4u);
        ASSERT_EQ(chain.moduleBusy.size(), 4u);
        const double simTotal =
            std::accumulate(metrics.perModuleUtilization.begin(),
                            metrics.perModuleUtilization.end(), 0.0);
        const double chainTotal = std::accumulate(
            chain.moduleBusy.begin(), chain.moduleBusy.end(), 0.0);
        ASSERT_GT(simTotal, 0.0);
        ASSERT_GT(chainTotal, 0.0);
        for (int j = 0; j < 4; ++j) {
            const double simShare =
                metrics.perModuleUtilization[j] / simTotal;
            const double chainShare =
                chain.moduleBusy[j] / chainTotal;
            const double ratio = simShare / chainShare;
            EXPECT_GT(ratio, 0.96)
                << "hot=" << hot << " module " << j;
            EXPECT_LT(ratio, 1.04)
                << "hot=" << hot << " module " << j;
        }
    }
}

/** Queue depths: bounded by what can actually wait, and a hot module
 *  must hold the deepest time-averaged queue. */
TEST(PerModule, QueueDepthBoundsAndOrdering)
{
    SystemConfig cfg;
    cfg.numProcessors = 6;
    cfg.numModules = 4;
    cfg.memoryRatio = 4;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 100000;
    cfg.collectPerModule = true;
    WorkloadConfig workload;
    workload.pattern = ReferencePattern::HotSpot;
    workload.hotFraction = 0.6;
    cfg.workload = workload;

    const Metrics m = runOnce(cfg);
    ASSERT_EQ(m.perModuleQueueDepthAvg.size(), 4u);
    for (int j = 0; j < 4; ++j) {
        EXPECT_GE(m.perModuleQueueDepthAvg[j], 0.0);
        // No more requests can wait on a module than processors exist.
        EXPECT_LE(m.perModuleQueueDepthMax[j],
                  static_cast<std::uint64_t>(cfg.numProcessors));
        EXPECT_LE(m.perModuleQueueDepthAvg[j],
                  static_cast<double>(m.perModuleQueueDepthMax[j]));
    }
    // Module 0 is the hot spot: deepest average queue.
    for (int j = 1; j < 4; ++j)
        EXPECT_GT(m.perModuleQueueDepthAvg[0],
                  m.perModuleQueueDepthAvg[j]);
}

/** Per-bus busy slots of the multibus baseline: suffix-sum structure
 *  (bus k busy exactly when > k modules serviced), totals matching
 *  the completion count, and exact utilization derivation. */
TEST(MultibusPerBus, BusySlotInvariants)
{
    for (const int buses : {2, 4, 8}) {
        MultibusSimConfig cfg;
        cfg.numProcessors = 8;
        cfg.numModules = 8;
        cfg.buses = buses;
        cfg.requestProbability = 0.7;
        cfg.seed = 42;
        cfg.warmupSlots = 1000;
        cfg.measureSlots = 20000;

        const MultibusSimResult res = runMultibusSim(cfg);
        ASSERT_EQ(res.perBusBusySlots.size(),
                  static_cast<std::size_t>(buses));
        ASSERT_EQ(res.perBusUtilization.size(),
                  static_cast<std::size_t>(buses));

        std::uint64_t total = 0;
        for (int k = 0; k < buses; ++k) {
            if (k > 0) {
                // Bus k carries a transfer only in slots where bus
                // k-1 does too: busy-slot counts are non-increasing.
                EXPECT_LE(res.perBusBusySlots[k],
                          res.perBusBusySlots[k - 1]);
            }
            EXPECT_LE(res.perBusBusySlots[k], res.measuredSlots);
            EXPECT_DOUBLE_EQ(
                res.perBusUtilization[k],
                static_cast<double>(res.perBusBusySlots[k]) /
                    static_cast<double>(res.measuredSlots));
            total += res.perBusBusySlots[k];
        }
        // Each completion occupies exactly one bus for one slot.
        EXPECT_EQ(total, res.completions);
    }
}

/** The per-bus accounting is derived after the run and must not
 *  perturb the RNG stream: bandwidth matches a pre-breakdown seed. */
TEST(MultibusPerBus, AccountingDoesNotPerturbBandwidth)
{
    MultibusSimConfig cfg;
    cfg.numProcessors = 6;
    cfg.numModules = 6;
    cfg.buses = 3;
    cfg.seed = 7;
    const MultibusSimResult a = runMultibusSim(cfg);
    const MultibusSimResult b = runMultibusSim(cfg);
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_EQ(a.bandwidth, b.bandwidth);
    EXPECT_EQ(a.perBusBusySlots, b.perBusBusySlots);
}

} // namespace
} // namespace sbn
