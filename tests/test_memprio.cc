/**
 * @file
 * Reproduction tests for the memory-priority analytical models:
 * paper Table 1 (exact Markov chain) and Table 2 (combinational
 * approximation) to printed precision, plus structural properties.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analytic/memprio.hh"
#include "analytic/occupancy_chain.hh"

namespace sbn {
namespace {

// Paper Table 1: EBW exact values, priority to memory modules,
// r = min(n, m) + 7; rows n = 2,4,6,8; columns m = 2,4,6,8.
constexpr double kTable1[4][4] = {
    {1.417, 1.625, 1.694, 1.729},
    {1.625, 2.308, 2.603, 2.761},
    {1.694, 2.603, 3.164, 3.469},
    {1.729, 2.761, 3.469, 3.988},
};

// Paper Table 2: EBW approximate values (non-symmetric expression).
constexpr double kTable2[4][4] = {
    {1.417, 1.625, 1.694, 1.729},
    {1.729, 2.392, 2.653, 2.792},
    {1.807, 2.778, 3.305, 3.570},
    {1.827, 2.987, 3.692, 4.178},
};

TEST(MemPrioExact, ReproducesTable1ToPrintedPrecision)
{
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            const int n = 2 * (i + 1);
            const int m = 2 * (j + 1);
            const int r = std::min(n, m) + 7;
            EXPECT_NEAR(memprioExactEbw(n, m, r), kTable1[i][j], 2e-3)
                << "n=" << n << " m=" << m;
        }
    }
}

TEST(MemPrioApprox, ReproducesTable2ToPrintedPrecision)
{
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            const int n = 2 * (i + 1);
            const int m = 2 * (j + 1);
            const int r = std::min(n, m) + 7;
            EXPECT_NEAR(memprioApproxEbw(n, m, r), kTable2[i][j], 2e-3)
                << "n=" << n << " m=" << m;
        }
    }
}

TEST(MemPrioExact, SymmetricInNandMAtPrintedPrecision)
{
    // The paper highlights this symmetry in Section 5 (Table 1 is
    // symmetric to its three printed decimals). The underlying chain
    // is only approximately symmetric: diffs here are ~1e-5..1e-4.
    for (int n : {2, 4, 6, 8}) {
        for (int m : {2, 4, 6, 8}) {
            const int r = std::min(n, m) + 7;
            EXPECT_NEAR(memprioExactEbw(n, m, r),
                        memprioExactEbw(m, n, r), 5e-4)
                << "n=" << n << " m=" << m;
        }
    }
}

TEST(MemPrioApprox, SymmetrizedVariantUsesMinMax)
{
    // The symmetrized expression evaluates at (min, max), making it
    // symmetric and equal to the plain approximation when n <= m.
    EXPECT_NEAR(memprioApproxSymmetricEbw(8, 4, 11),
                memprioApproxEbw(4, 8, 11), 1e-12);
    EXPECT_NEAR(memprioApproxSymmetricEbw(4, 8, 11),
                memprioApproxEbw(4, 8, 11), 1e-12);
    EXPECT_NEAR(memprioApproxSymmetricEbw(8, 4, 11),
                memprioApproxSymmetricEbw(4, 8, 11), 1e-12);
}

TEST(MemPrioApprox, Within9PercentOfExact)
{
    // Section 5: "observed numerical disagreements are always less
    // than 9%".
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            const int n = 2 * (i + 1);
            const int m = 2 * (j + 1);
            const int r = std::min(n, m) + 7;
            const double exact = memprioExactEbw(n, m, r);
            const double approx = memprioApproxEbw(n, m, r);
            EXPECT_LT(std::abs(approx - exact) / exact, 0.09)
                << "n=" << n << " m=" << m;
        }
    }
}

TEST(MemPrioUseful, EdgeValues)
{
    // x = 0: nothing serviced.
    EXPECT_DOUBLE_EQ(memprioUsefulEbw(0, 8), 0.0);
    // x = 1: round is r+2 cycles servicing 1 -> exactly 1 per cycle.
    EXPECT_DOUBLE_EQ(memprioUsefulEbw(1, 8), 1.0);
    // x = r+1 boundary equals the saturation value (r+2)/2.
    const int r = 6;
    EXPECT_NEAR(memprioUsefulEbw(r + 1, r), (r + 2) / 2.0, 1e-12);
    EXPECT_NEAR(memprioUsefulEbw(r + 5, r), (r + 2) / 2.0, 1e-12);
}

TEST(MemPrioUseful, MonotoneInX)
{
    const int r = 10;
    double prev = 0.0;
    for (int x = 0; x <= 2 * r; ++x) {
        const double v = memprioUsefulEbw(x, r);
        EXPECT_GE(v, prev - 1e-12) << "x=" << x;
        prev = v;
    }
}

TEST(MemPrioExact, BoundedByTheoreticalMax)
{
    for (int n : {2, 4, 8}) {
        for (int r : {1, 2, 4, 8}) {
            const double ebw = memprioExactEbw(n, n, r);
            EXPECT_LE(ebw, (r + 2) / 2.0 + 1e-9);
            EXPECT_GT(ebw, 0.0);
        }
    }
}

TEST(MemPrioExact, ApproachesMaxForManyModules)
{
    // With r < min(n, m) and ample parallelism the bus saturates
    // (conclusion: maximum bandwidth attainable with r < min(n, m)).
    const int n = 12, m = 12, r = 3;
    const double ebw = memprioExactEbw(n, m, r);
    EXPECT_GT(ebw / ((r + 2) / 2.0), 0.93);
}

TEST(MemPrioExact, IncreasesWithR)
{
    double prev = 0.0;
    for (int r = 1; r <= 12; ++r) {
        const double ebw = memprioExactEbw(6, 6, r);
        EXPECT_GE(ebw, prev - 1e-9) << "r=" << r;
        prev = ebw;
    }
}

TEST(MemPrioExact, ReducesToCrossbarChainForLargeR)
{
    // For r+1 >= min(n, m) the service cap never binds, so the
    // Section 3.1.1 chain has exactly the crossbar occupancy law and
    // the EBW is the crossbar pmf reweighted by the useful-cycle
    // factor - the structural identity behind Table 1's symmetry.
    for (int n : {3, 5, 8}) {
        for (int m : {4, 8}) {
            const int r = std::min(n, m) + 3;
            OccupancyChain crossbar_chain(n, m, std::min(n, m));
            const auto pmf = crossbar_chain.solve().busyPmf;
            double expect = 0.0;
            for (std::size_t x = 0; x < pmf.size(); ++x)
                expect += pmf[x] *
                          memprioUsefulEbw(static_cast<int>(x), r);
            EXPECT_NEAR(memprioExactEbw(n, m, r), expect, 1e-9)
                << "n=" << n << " m=" << m;
        }
    }
}

} // namespace
} // namespace sbn
