/**
 * @file
 * Tests for the synchronous crossbar / multiple-bus baseline
 * simulators, cross-validated against the exact occupancy chains.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analytic/crossbar.hh"
#include "analytic/multibus.hh"
#include "analytic/occupancy_chain.hh"
#include "baselines/multibus_sim.hh"

namespace sbn {
namespace {

TEST(BaselineSim, CrossbarMatchesExactChainAtFullLoad)
{
    for (int n : {2, 4, 8}) {
        for (int m : {2, 4, 8, 16}) {
            const auto res = runCrossbarSim(n, m, 1.0, 7);
            const double exact = crossbarExactBandwidth(n, m);
            EXPECT_NEAR(res.bandwidth / exact, 1.0, 0.02)
                << "n=" << n << " m=" << m;
        }
    }
}

TEST(BaselineSim, MultibusMatchesExactChainAtFullLoad)
{
    for (int b : {1, 2, 3, 4}) {
        const auto config = [&] {
            MultibusSimConfig c;
            c.numProcessors = 8;
            c.numModules = 8;
            c.buses = b;
            c.seed = 11;
            return c;
        }();
        const auto res = runMultibusSim(config);
        const double exact = multibusExactBandwidth(8, 8, b);
        EXPECT_NEAR(res.bandwidth / exact, 1.0, 0.02) << "b=" << b;
    }
}

TEST(BaselineSim, BusyPmfMatchesExactChain)
{
    MultibusSimConfig config;
    config.numProcessors = 6;
    config.numModules = 4;
    config.buses = 2;
    config.measureSlots = 200000;
    const auto res = runMultibusSim(config);

    OccupancyChain chain(6, 4, 2);
    const auto exact = chain.solve().busyPmf;
    ASSERT_EQ(res.busyPmf.size(), exact.size());
    for (std::size_t x = 0; x < exact.size(); ++x)
        EXPECT_NEAR(res.busyPmf[x], exact[x], 0.01) << "x=" << x;
}

TEST(BaselineSim, LightLoadBandwidthIsNP)
{
    // With p small there is almost no interference: BW ~= n*p.
    const auto res = runCrossbarSim(8, 16, 0.05, 3, 5000, 200000);
    EXPECT_NEAR(res.bandwidth / (8 * 0.05), 1.0, 0.05);
}

TEST(BaselineSim, BandwidthMonotoneInP)
{
    double prev = 0.0;
    for (double p : {0.2, 0.4, 0.6, 0.8, 1.0}) {
        const auto res = runCrossbarSim(8, 8, p, 5);
        EXPECT_GE(res.bandwidth, prev - 0.05) << "p=" << p;
        prev = res.bandwidth;
    }
}

TEST(BaselineSim, Deterministic)
{
    MultibusSimConfig config;
    config.numProcessors = 5;
    config.numModules = 3;
    config.buses = 2;
    config.requestProbability = 0.7;
    config.seed = 42;
    const auto a = runMultibusSim(config);
    const auto b = runMultibusSim(config);
    EXPECT_EQ(a.completions, b.completions);
}

TEST(BaselineSim, EfficiencyBounds)
{
    const auto res = runCrossbarSim(8, 8, 1.0, 1);
    EXPECT_GT(res.processorEfficiency, 0.0);
    EXPECT_LE(res.processorEfficiency, 1.0);
    EXPECT_EQ(res.measuredSlots, 50000u);
}

TEST(BaselineSim, DegenerateSingleModule)
{
    const auto res = runCrossbarSim(6, 1, 1.0, 9);
    EXPECT_NEAR(res.bandwidth, 1.0, 1e-9);
}

} // namespace
} // namespace sbn
