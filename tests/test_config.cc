/**
 * @file
 * Configuration-validation tests: every invalid parameter must be
 * rejected loudly (fatal) before a simulation starts, and the
 * documented defaults must describe a valid paper-baseline system.
 */

#include <gtest/gtest.h>

#include "core/config.hh"
#include "core/experiment.hh"

namespace sbn {
namespace {

SystemConfig
valid()
{
    SystemConfig cfg; // defaults are the paper's 8x8 style baseline
    return cfg;
}

TEST(ConfigValidation, DefaultsAreValid)
{
    SystemConfig cfg = valid();
    cfg.validate(); // must not exit
    EXPECT_EQ(cfg.processorCycle(), cfg.memoryRatio + 2);
    EXPECT_DOUBLE_EQ(cfg.maxEbw(), (cfg.memoryRatio + 2) / 2.0);
}

TEST(ConfigValidationDeath, RejectsNonPositiveProcessors)
{
    SystemConfig cfg = valid();
    cfg.numProcessors = 0;
    EXPECT_DEATH(cfg.validate(), "numProcessors");
}

TEST(ConfigValidationDeath, RejectsNonPositiveModules)
{
    SystemConfig cfg = valid();
    cfg.numModules = -1;
    EXPECT_DEATH(cfg.validate(), "numModules");
}

TEST(ConfigValidationDeath, RejectsZeroMemoryRatio)
{
    SystemConfig cfg = valid();
    cfg.memoryRatio = 0;
    EXPECT_DEATH(cfg.validate(), "memoryRatio");
}

TEST(ConfigValidationDeath, RejectsProbabilityOutOfRange)
{
    SystemConfig low = valid();
    low.requestProbability = -0.1;
    EXPECT_DEATH(low.validate(), "requestProbability");

    SystemConfig high = valid();
    high.requestProbability = 1.5;
    EXPECT_DEATH(high.validate(), "requestProbability");
}

TEST(ConfigValidationDeath, RejectsNegativeCapacities)
{
    SystemConfig cfg = valid();
    cfg.buffered = true;
    cfg.inputCapacity = -2;
    EXPECT_DEATH(cfg.validate(), "capacities");
}

TEST(ConfigValidationDeath, RejectsCapacitiesWithoutBuffering)
{
    SystemConfig cfg = valid();
    cfg.buffered = false;
    cfg.inputCapacity = 2;
    EXPECT_DEATH(cfg.validate(), "buffered");
}

TEST(ConfigValidationDeath, RejectsWeightVectorSizeMismatch)
{
    SystemConfig cfg = valid();
    cfg.workload.pattern = ReferencePattern::Weighted;
    cfg.workload.moduleWeights = {1.0, 2.0}; // != numModules
    EXPECT_DEATH(cfg.validate(), "moduleWeights");
}

TEST(ConfigValidationDeath, RejectsNonPositiveWeights)
{
    SystemConfig cfg = valid();
    cfg.workload.pattern = ReferencePattern::Weighted;
    cfg.workload.moduleWeights.assign(cfg.numModules, 1.0);
    cfg.workload.moduleWeights[3] = 0.0;
    EXPECT_DEATH(cfg.validate(), "moduleWeights");
}

TEST(ConfigValidationDeath, RejectsHotSpotOutOfRange)
{
    SystemConfig cfg = valid();
    cfg.workload.pattern = ReferencePattern::HotSpot;
    cfg.workload.hotFraction = 1.5;
    EXPECT_DEATH(cfg.validate(), "hotFraction");

    cfg = valid();
    cfg.workload.pattern = ReferencePattern::HotSpot;
    cfg.workload.hotModule = cfg.numModules;
    EXPECT_DEATH(cfg.validate(), "hotModule");
}

TEST(ConfigValidationDeath, RejectsThinkVectorMismatch)
{
    SystemConfig cfg = valid();
    cfg.workload.think = ThinkModel::PerProcessor;
    cfg.workload.thinkProbabilities = {0.5}; // != numProcessors
    EXPECT_DEATH(cfg.validate(), "thinkProbabilities");

    cfg = valid();
    cfg.workload.think = ThinkModel::TwoClass;
    cfg.workload.fastCount = cfg.numProcessors + 1;
    EXPECT_DEATH(cfg.validate(), "fastCount");
}

TEST(ConfigValidationDeath, RejectsEmptyMeasurementWindow)
{
    SystemConfig cfg = valid();
    cfg.measureCycles = 0;
    EXPECT_DEATH(cfg.validate(), "measureCycles");
}

TEST(ConfigValidation, ValidWeightsAccepted)
{
    SystemConfig cfg = valid();
    cfg.workload.pattern = ReferencePattern::Weighted;
    cfg.workload.moduleWeights.assign(cfg.numModules, 1.0);
    cfg.workload.moduleWeights[0] = 7.5;
    cfg.validate();
    // And the system actually runs with them.
    cfg.measureCycles = 5000;
    cfg.warmupCycles = 100;
    EXPECT_GT(runEbw(cfg), 0.0);
}

TEST(ConfigValidation, ConstructingSystemValidates)
{
    SystemConfig cfg = valid();
    cfg.memoryRatio = -3;
    EXPECT_DEATH({ SingleBusSystem system(cfg); }, "memoryRatio");
}

} // namespace
} // namespace sbn
