/**
 * @file
 * Tests specific to the Section 6 buffered-memory organization:
 * back-to-back service, finite buffer capacities, blocking, and the
 * r -> infinity convergence toward the crossbar.
 */

#include <gtest/gtest.h>

#include "analytic/crossbar.hh"
#include "core/experiment.hh"

namespace sbn {
namespace {

SystemConfig
bufferedConfig(int n, int m, int r)
{
    SystemConfig cfg;
    cfg.numProcessors = n;
    cfg.numModules = m;
    cfg.memoryRatio = r;
    cfg.buffered = true;
    cfg.policy = ArbitrationPolicy::ProcessorPriority;
    cfg.warmupCycles = 10000;
    cfg.measureCycles = 200000;
    return cfg;
}

TEST(Buffered, BackToBackServiceSaturatesModule)
{
    // One module, many processors: the module must never idle, so its
    // utilization approaches 1 (vs (r)/(r+2) unbuffered).
    SystemConfig cfg = bufferedConfig(6, 1, 8);
    const Metrics m = runOnce(cfg);
    EXPECT_GT(m.meanModuleUtilization, 0.98);

    cfg.buffered = false;
    cfg.inputCapacity = 0;
    cfg.outputCapacity = 0;
    const Metrics plain = runOnce(cfg);
    EXPECT_NEAR(plain.meanModuleUtilization, 8.0 / 10.0, 0.02);
}

TEST(Buffered, UnboundedEqualsCapacityN)
{
    // With one outstanding request per processor, capacity n can
    // never fill: identical trajectories to unbounded buffers.
    SystemConfig unbounded = bufferedConfig(8, 4, 8);
    SystemConfig capped = bufferedConfig(8, 4, 8);
    capped.inputCapacity = 8;
    capped.outputCapacity = 8;
    const Metrics a = runOnce(unbounded);
    const Metrics b = runOnce(capped);
    EXPECT_EQ(a.completedRequests, b.completedRequests);
    EXPECT_EQ(a.busBusyCycles, b.busBusyCycles);
}

TEST(Buffered, TinyInputBuffersDegradeTowardUnbuffered)
{
    // Shrinking the input buffer monotonically (within noise) lowers
    // EBW; capacity-1 sits between unbuffered and unbounded.
    SystemConfig cfg = bufferedConfig(8, 4, 12);
    const double unbounded = runEbw(cfg);

    cfg.inputCapacity = 1;
    const double one_slot = runEbw(cfg);

    cfg.inputCapacity = 0;
    cfg.buffered = false;
    const double plain = runEbw(cfg);

    EXPECT_GE(unbounded, one_slot - 0.02);
    EXPECT_GE(one_slot, plain - 0.02);
    EXPECT_GT(unbounded, plain);
}

TEST(Buffered, OutputBlockingThrottles)
{
    // A 1-deep output buffer forces the module to stall until the
    // bus drains its response; EBW must not exceed the unbounded
    // case and the system must stay deadlock-free.
    SystemConfig cfg = bufferedConfig(8, 4, 8);
    const double unbounded = runEbw(cfg);
    cfg.outputCapacity = 1;
    const double blocked = runEbw(cfg);
    EXPECT_GT(blocked, 0.5);
    EXPECT_LE(blocked, unbounded + 0.02);
}

TEST(Buffered, ConvergesToCrossbarForLargeR)
{
    // Section 6: "when r increases, the buffered single-bus EBW tends
    // to the crossbar corresponding values".
    const double crossbar = crossbarExactBandwidth(8, 8);
    const double near = runEbw(bufferedConfig(8, 8, 32));
    EXPECT_NEAR(near / crossbar, 1.0, 0.06);

    // And from above through the mid range: at moderate r the
    // buffered bus beats the crossbar (the Fig. 5 crossing).
    const double mid = runEbw(bufferedConfig(8, 8, 10));
    EXPECT_GT(mid, crossbar);
}

TEST(Buffered, GainGrowsWithProcessorExcess)
{
    // Section 6: "the effect of buffering is proportionally larger as
    // the difference (n-m) increases". This holds in the unsaturated
    // regime (r >= 2m here); at small r both organizations pin to the
    // bus ceiling and the gain is masked.
    auto gain = [](int n, int m, int r) {
        SystemConfig buffered = bufferedConfig(n, m, r);
        SystemConfig plain = buffered;
        plain.buffered = false;
        return runEbw(buffered) / runEbw(plain);
    };
    EXPECT_GT(gain(16, 8, 16), gain(8, 8, 16));
    EXPECT_GT(gain(16, 4, 8), gain(16, 8, 8));
}

TEST(Buffered, BufferingGainShrinksWithLowP)
{
    // Section 7: "the positive influence of buffering becomes less
    // effective as p decreases" (less interference to remove).
    SystemConfig hi = bufferedConfig(8, 16, 12);
    SystemConfig hi_plain = hi;
    hi_plain.buffered = false;

    SystemConfig lo = bufferedConfig(8, 16, 12);
    lo.requestProbability = 0.3;
    SystemConfig lo_plain = lo;
    lo_plain.buffered = false;

    const double gain_hi = runEbw(hi) / runEbw(hi_plain);
    const double gain_lo = runEbw(lo) / runEbw(lo_plain);
    EXPECT_GE(gain_hi, gain_lo - 0.01);
}

TEST(Buffered, MemoryPriorityAlsoSupported)
{
    // The paper evaluates buffered systems under g' only; the library
    // supports g'' too - check it runs and respects bounds.
    SystemConfig cfg = bufferedConfig(8, 8, 8);
    cfg.policy = ArbitrationPolicy::MemoryPriority;
    const Metrics m = runOnce(cfg);
    EXPECT_GT(m.ebw, 1.0);
    EXPECT_LE(m.ebw, cfg.maxEbw() * 1.01);
}

TEST(Buffered, WaitsExceedUnbufferedUnderSaturation)
{
    // Buffering trades waiting location: requests queue inside the
    // modules. Mean service span must still be >= the minimal r+2.
    const Metrics m = runOnce(bufferedConfig(16, 4, 8));
    EXPECT_GE(m.meanServiceCycles, 10.0);
    EXPECT_GT(m.meanWaitCycles, 1.0);
}

} // namespace
} // namespace sbn
