/**
 * @file
 * Basic behavioural tests of the single-bus simulator: closed-form
 * degenerate cases, determinism, measurement identities.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hh"

namespace sbn {
namespace {

SystemConfig
baseConfig()
{
    SystemConfig cfg;
    cfg.numProcessors = 8;
    cfg.numModules = 8;
    cfg.memoryRatio = 8;
    cfg.warmupCycles = 5000;
    cfg.measureCycles = 100000;
    return cfg;
}

TEST(SystemBasic, SingleProcessorIsUncontended)
{
    // n = 1: every request takes exactly r+2 cycles -> EBW = 1.
    for (int r : {1, 4, 9}) {
        for (bool buffered : {false, true}) {
            SystemConfig cfg = baseConfig();
            cfg.numProcessors = 1;
            cfg.memoryRatio = r;
            cfg.buffered = buffered;
            const Metrics m = runOnce(cfg);
            EXPECT_NEAR(m.ebw, 1.0, 1e-2)
                << "r=" << r << " buffered=" << buffered;
            EXPECT_NEAR(m.meanWaitCycles, 0.0, 1e-9);
        }
    }
}

TEST(SystemBasic, SingleModuleUnbufferedSerializes)
{
    // m = 1 unbuffered: the module turns around one request per r+2
    // cycles -> EBW = 1 exactly, independent of n.
    for (int n : {2, 4, 8}) {
        SystemConfig cfg = baseConfig();
        cfg.numProcessors = n;
        cfg.numModules = 1;
        const Metrics m = runOnce(cfg);
        EXPECT_NEAR(m.ebw, 1.0, 1e-2) << "n=" << n;
    }
}

TEST(SystemBasic, SingleModuleBufferedPipelines)
{
    // m = 1 buffered: the module works back-to-back -> one service per
    // max(r, 2) bus cycles (bus needs 2 cycles per service), i.e.
    // EBW = (r+2)/max(r, 2) once n >= 2 keeps the queue fed.
    for (int r : {1, 2, 4, 9}) {
        SystemConfig cfg = baseConfig();
        cfg.numProcessors = 6;
        cfg.numModules = 1;
        cfg.memoryRatio = r;
        cfg.buffered = true;
        const Metrics m = runOnce(cfg);
        const double expect =
            (r + 2.0) / std::max(static_cast<double>(r), 2.0);
        EXPECT_NEAR(m.ebw, expect, 0.02) << "r=" << r;
    }
}

TEST(SystemBasic, ZeroRequestProbabilityIsSilent)
{
    SystemConfig cfg = baseConfig();
    cfg.requestProbability = 0.0;
    const Metrics m = runOnce(cfg);
    EXPECT_EQ(m.completedRequests, 0u);
    EXPECT_EQ(m.issuedRequests, 0u);
    EXPECT_DOUBLE_EQ(m.ebw, 0.0);
    EXPECT_DOUBLE_EQ(m.busUtilization, 0.0);
}

TEST(SystemBasic, DeterministicForFixedSeed)
{
    SystemConfig cfg = baseConfig();
    cfg.seed = 12345;
    const Metrics a = runOnce(cfg);
    const Metrics b = runOnce(cfg);
    EXPECT_EQ(a.completedRequests, b.completedRequests);
    EXPECT_EQ(a.busBusyCycles, b.busBusyCycles);
    EXPECT_EQ(a.perProcessorCompletions, b.perProcessorCompletions);
    EXPECT_DOUBLE_EQ(a.ebw, b.ebw);
}

TEST(SystemBasic, SeedsProduceIndependentRuns)
{
    SystemConfig cfg = baseConfig();
    cfg.seed = 1;
    const Metrics a = runOnce(cfg);
    cfg.seed = 2;
    const Metrics b = runOnce(cfg);
    // Same steady state but different trajectories.
    EXPECT_NE(a.completedRequests, b.completedRequests);
    EXPECT_NEAR(a.ebw, b.ebw, 0.1);
}

TEST(SystemBasic, EbwIdentityWithBusUtilization)
{
    // EBW = Pb * (r+2) / 2 up to window boundary effects.
    for (bool buffered : {false, true}) {
        for (auto policy : {ArbitrationPolicy::ProcessorPriority,
                            ArbitrationPolicy::MemoryPriority}) {
            SystemConfig cfg = baseConfig();
            cfg.buffered = buffered;
            cfg.policy = policy;
            const Metrics m = runOnce(cfg);
            EXPECT_NEAR(m.ebw, m.ebwFromBusUtilization,
                        0.01 * m.ebw + 1e-6)
                << "buffered=" << buffered;
        }
    }
}

TEST(SystemBasic, MaxEbwRespected)
{
    for (int r : {1, 2, 8}) {
        SystemConfig cfg = baseConfig();
        cfg.numProcessors = 16;
        cfg.numModules = 16;
        cfg.memoryRatio = r;
        cfg.buffered = true;
        const Metrics m = runOnce(cfg);
        EXPECT_LE(m.ebw, cfg.maxEbw() * 1.005) << "r=" << r;
        EXPECT_LE(m.busUtilization, 1.0 + 1e-12);
    }
}

TEST(SystemBasic, SaturatesWithAmpleParallelism)
{
    // Conclusion: max EBW (r+2)/2 attainable when r < min(n, m).
    SystemConfig cfg = baseConfig();
    cfg.numProcessors = 12;
    cfg.numModules = 12;
    cfg.memoryRatio = 4;
    const Metrics m = runOnce(cfg);
    EXPECT_GT(m.busUtilization, 0.97);
}

TEST(SystemBasic, WaitTimesNonNegativeAndConsistent)
{
    SystemConfig cfg = baseConfig();
    cfg.numProcessors = 12;
    cfg.numModules = 4;
    const Metrics m = runOnce(cfg);
    EXPECT_GE(m.waitStats.min(), 0.0);
    EXPECT_NEAR(m.meanServiceCycles,
                m.meanWaitCycles + cfg.processorCycle(), 1e-9);
    EXPECT_GT(m.meanWaitCycles, 0.0); // 12 procs on 4 modules queue up
}

TEST(SystemBasic, HistogramCollectsWhenEnabled)
{
    SystemConfig cfg = baseConfig();
    cfg.collectWaitHistogram = true;
    const Metrics m = runOnce(cfg);
    ASSERT_TRUE(m.waitHistogram.has_value());
    EXPECT_EQ(m.waitHistogram->count(), m.completedRequests);
    EXPECT_NEAR(m.waitHistogram->mean(), m.meanWaitCycles, 1e-9);

    SystemConfig off = baseConfig();
    EXPECT_FALSE(runOnce(off).waitHistogram.has_value());
}

TEST(SystemBasic, RoughFairnessAcrossProcessors)
{
    SystemConfig cfg = baseConfig();
    cfg.measureCycles = 200000;
    const Metrics m = runOnce(cfg);
    const double mean = static_cast<double>(m.completedRequests) /
                        cfg.numProcessors;
    for (auto c : m.perProcessorCompletions)
        EXPECT_NEAR(static_cast<double>(c), mean, 0.1 * mean);
}

TEST(SystemBasic, IssuedMatchesCompletedUpToInFlight)
{
    SystemConfig cfg = baseConfig();
    const Metrics m = runOnce(cfg);
    // Every issued request either completed or is one of <= n
    // in-flight ones (plus <= n issued before the window started).
    const auto slack = static_cast<std::uint64_t>(cfg.numProcessors);
    EXPECT_LE(m.completedRequests, m.issuedRequests + slack);
    EXPECT_LE(m.issuedRequests, m.completedRequests + slack);
}

TEST(SystemBasic, ProcessorEfficiencyDefinition)
{
    SystemConfig cfg = baseConfig();
    const Metrics m = runOnce(cfg);
    EXPECT_NEAR(m.processorEfficiency, m.ebw / cfg.numProcessors, 1e-12);
    EXPECT_LE(m.processorEfficiency, 1.0 + 1e-9);
}

TEST(SystemBasic, RunIsSingleShot)
{
    SystemConfig cfg = baseConfig();
    cfg.measureCycles = 1000;
    SingleBusSystem system(cfg);
    (void)system.run();
    EXPECT_DEATH((void)system.run(), "run may only be called once");
}

} // namespace
} // namespace sbn
