/**
 * @file
 * Tests for the execution layer: thread pool liveness, ordered
 * parallel map, and the determinism contract - replication and sweep
 * results must be bit-identical to serial execution at any thread
 * count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/experiment.hh"
#include "exec/parallel_runner.hh"
#include "exec/sweep.hh"
#include "exec/thread_pool.hh"
#include "stats/replication.hh"
#include "util/random.hh"

namespace sbn {
namespace {

TEST(ThreadPool, RunsEveryPostedTask)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        EXPECT_EQ(pool.threadCount(), 4u);
        for (int i = 0; i < 1000; ++i)
            pool.post([&] { ++count; });
        // Destructor drains the queue before joining.
    }
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ParallelRunner, MapCollectsResultsByIndex)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        ParallelRunner runner(threads);
        EXPECT_EQ(runner.threads(), threads);
        const auto squares = runner.map<int>(100, [](std::size_t i) {
            return static_cast<int>(i * i);
        });
        ASSERT_EQ(squares.size(), 100u);
        for (std::size_t i = 0; i < squares.size(); ++i)
            EXPECT_EQ(squares[i], static_cast<int>(i * i));
    }
}

TEST(ParallelRunner, ForEachIndexVisitsEachIndexOnce)
{
    ParallelRunner runner(8);
    std::vector<std::atomic<int>> visits(257);
    runner.forEachIndex(visits.size(),
                        [&](std::size_t i) { ++visits[i]; });
    for (const auto &v : visits)
        EXPECT_EQ(v.load(), 1);
}

TEST(ParallelRunner, ZeroItemsIsANoOp)
{
    ParallelRunner runner(4);
    runner.forEachIndex(0, [](std::size_t) { FAIL(); });
}

TEST(ParallelRunner, PropagatesWorkerExceptions)
{
    for (unsigned threads : {1u, 4u}) {
        ParallelRunner runner(threads);
        EXPECT_THROW(runner.forEachIndex(64,
                                         [](std::size_t i) {
                                             if (i == 3)
                                                 throw std::runtime_error(
                                                     "boom");
                                         }),
                     std::runtime_error);
    }
}

/** Synthetic RNG experiment with enough arithmetic to expose any
    reduction-order difference in the last bit. */
double
noisyExperiment(std::uint64_t seed)
{
    RandomGenerator rng(seed);
    double acc = 0.0;
    for (int i = 0; i < 250; ++i)
        acc += rng.uniformReal() * 3.7 - 1.2;
    return acc;
}

TEST(ParallelRunner, ReplicationsBitIdenticalToSerialPath)
{
    // Reference: the serial stats-layer path (default threads = 1).
    const Estimate serial = runReplications(noisyExperiment, 11, 424242);

    for (unsigned threads : {1u, 2u, 8u}) {
        ParallelRunner runner(threads);
        const Estimate parallel =
            runner.runReplications(noisyExperiment, 11, 424242);
        // Exact floating-point equality, not NEAR: the contract is
        // bit-identical results at any thread count.
        EXPECT_EQ(parallel.mean, serial.mean) << threads << " threads";
        EXPECT_EQ(parallel.halfWidth, serial.halfWidth)
            << threads << " threads";
        EXPECT_EQ(parallel.samples, serial.samples);
    }
}

TEST(ParallelRunner, SimulationReplicationsBitIdenticalAcrossThreads)
{
    SystemConfig cfg;
    cfg.numProcessors = 4;
    cfg.numModules = 4;
    cfg.memoryRatio = 4;
    cfg.warmupCycles = 100;
    cfg.measureCycles = 5000;
    cfg.seed = 99;

    const auto metric = [](const Metrics &m) { return m.ebw; };
    const Estimate serial = replicate(cfg, 6, metric, 1);
    for (unsigned threads : {2u, 8u}) {
        const Estimate parallel = replicate(cfg, 6, metric, threads);
        EXPECT_EQ(parallel.mean, serial.mean) << threads << " threads";
        EXPECT_EQ(parallel.halfWidth, serial.halfWidth)
            << threads << " threads";
    }
}

TEST(ParallelRunner, SeedsMatchTheSerialDerivationStream)
{
    // The seeds handed to a parallel run must be exactly the ones the
    // serial path would derive, in replication order.
    RandomGenerator seeder(7);
    std::vector<std::uint64_t> expected(5);
    for (auto &s : expected)
        s = seeder.deriveSeed();

    std::vector<std::uint64_t> seen(5, 0);
    std::size_t slot = 0;
    ParallelRunner runner(1); // serial so the capture below is ordered
    runner.runReplications(
        [&](std::uint64_t seed) {
            seen[slot++] = seed;
            return 0.0;
        },
        5, 7);
    EXPECT_EQ(seen, expected);
}

TEST(ParallelRunner, SingleReplicationHasZeroHalfWidth)
{
    ParallelRunner runner(2);
    const Estimate e =
        runner.runReplications(noisyExperiment, 1, 123);
    EXPECT_EQ(e.samples, 1u);
    EXPECT_EQ(e.halfWidth, 0.0);
    EXPECT_EQ(e.mean, noisyExperiment(RandomGenerator(123).deriveSeed()));
}

TEST(SweepSpec, EmptyAxesYieldTheBasePoint)
{
    SweepSpec spec;
    spec.base.numProcessors = 3;
    spec.base.numModules = 5;
    EXPECT_EQ(spec.size(), 1u);
    const auto points = spec.materialize();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].numProcessors, 3);
    EXPECT_EQ(points[0].numModules, 5);
}

TEST(SweepSpec, MaterializesTheCrossProductInDocumentedOrder)
{
    SweepSpec spec;
    spec.base.seed = 77;
    spec.processors = {2, 4};
    spec.memoryRatios = {2, 4, 6};
    spec.buffering = {false, true};
    EXPECT_EQ(spec.size(), 12u);

    const auto points = spec.materialize();
    ASSERT_EQ(points.size(), 12u);
    std::size_t idx = 0;
    for (int n : {2, 4}) {
        for (int r : {2, 4, 6}) {
            for (bool b : {false, true}) {
                EXPECT_EQ(points[idx].numProcessors, n);
                EXPECT_EQ(points[idx].memoryRatio, r);
                EXPECT_EQ(points[idx].buffered, b);
                EXPECT_EQ(points[idx].seed, 77u); // inherited
                ++idx;
            }
        }
    }
}

TEST(ParallelRunner, SweepResultsMatchSerialEvaluationInGridOrder)
{
    SweepSpec spec;
    spec.processors = {2, 4, 8};
    spec.modules = {2, 8};
    spec.memoryRatios = {2, 4, 6, 8};

    const auto evaluate = [](const SystemConfig &cfg) {
        return cfg.numProcessors * 10000.0 + cfg.numModules * 100.0 +
               cfg.memoryRatio;
    };

    const auto points = spec.materialize();
    std::vector<double> expected;
    for (const auto &cfg : points)
        expected.push_back(evaluate(cfg));

    for (unsigned threads : {1u, 2u, 8u}) {
        ParallelRunner runner(threads);
        EXPECT_EQ(runner.sweep(spec, evaluate), expected)
            << threads << " threads";
    }
}

TEST(Exec, DefaultThreadsOverrideRoundTrips)
{
    const unsigned before = defaultExecThreads();
    setDefaultExecThreads(3);
    EXPECT_EQ(defaultExecThreads(), 3u);
    setDefaultExecThreads(0); // back to environment resolution
    EXPECT_EQ(defaultExecThreads(), before);
    EXPECT_GE(defaultExecThreads(), 1u);
}

} // namespace
} // namespace sbn
