/**
 * @file
 * Tests for the execution layer: thread pool liveness, ordered
 * parallel map, and the determinism contract - replication and sweep
 * results must be bit-identical to serial execution at any thread
 * count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/experiment.hh"
#include "exec/adaptive.hh"
#include "exec/parallel_runner.hh"
#include "exec/sweep.hh"
#include "exec/thread_pool.hh"
#include "stats/replication.hh"
#include "util/random.hh"

namespace sbn {
namespace {

TEST(ThreadPool, RunsEveryPostedTask)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        EXPECT_EQ(pool.threadCount(), 4u);
        for (int i = 0; i < 1000; ++i)
            pool.post([&] { ++count; });
        // Destructor drains the queue before joining.
    }
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ParallelRunner, MapCollectsResultsByIndex)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        ParallelRunner runner(threads);
        EXPECT_EQ(runner.threads(), threads);
        const auto squares = runner.map<int>(100, [](std::size_t i) {
            return static_cast<int>(i * i);
        });
        ASSERT_EQ(squares.size(), 100u);
        for (std::size_t i = 0; i < squares.size(); ++i)
            EXPECT_EQ(squares[i], static_cast<int>(i * i));
    }
}

TEST(ParallelRunner, ForEachIndexVisitsEachIndexOnce)
{
    ParallelRunner runner(8);
    std::vector<std::atomic<int>> visits(257);
    runner.forEachIndex(visits.size(),
                        [&](std::size_t i) { ++visits[i]; });
    for (const auto &v : visits)
        EXPECT_EQ(v.load(), 1);
}

TEST(ParallelRunner, ZeroItemsIsANoOp)
{
    ParallelRunner runner(4);
    runner.forEachIndex(0, [](std::size_t) { FAIL(); });
}

TEST(ParallelRunner, PropagatesWorkerExceptions)
{
    for (unsigned threads : {1u, 4u}) {
        ParallelRunner runner(threads);
        EXPECT_THROW(runner.forEachIndex(64,
                                         [](std::size_t i) {
                                             if (i == 3)
                                                 throw std::runtime_error(
                                                     "boom");
                                         }),
                     std::runtime_error);
    }
}

/** Synthetic RNG experiment with enough arithmetic to expose any
    reduction-order difference in the last bit. */
double
noisyExperiment(std::uint64_t seed)
{
    RandomGenerator rng(seed);
    double acc = 0.0;
    for (int i = 0; i < 250; ++i)
        acc += rng.uniformReal() * 3.7 - 1.2;
    return acc;
}

TEST(ParallelRunner, ReplicationsBitIdenticalToSerialPath)
{
    // Reference: the serial stats-layer path (default threads = 1).
    const Estimate serial = runReplications(noisyExperiment, 11, 424242);

    for (unsigned threads : {1u, 2u, 8u}) {
        ParallelRunner runner(threads);
        const Estimate parallel =
            runner.runReplications(noisyExperiment, 11, 424242);
        // Exact floating-point equality, not NEAR: the contract is
        // bit-identical results at any thread count.
        EXPECT_EQ(parallel.mean, serial.mean) << threads << " threads";
        EXPECT_EQ(parallel.halfWidth, serial.halfWidth)
            << threads << " threads";
        EXPECT_EQ(parallel.samples, serial.samples);
    }
}

TEST(ParallelRunner, SimulationReplicationsBitIdenticalAcrossThreads)
{
    SystemConfig cfg;
    cfg.numProcessors = 4;
    cfg.numModules = 4;
    cfg.memoryRatio = 4;
    cfg.warmupCycles = 100;
    cfg.measureCycles = 5000;
    cfg.seed = 99;

    const auto metric = [](const Metrics &m) { return m.ebw; };
    const Estimate serial = replicate(cfg, 6, metric, 1);
    for (unsigned threads : {2u, 8u}) {
        const Estimate parallel = replicate(cfg, 6, metric, threads);
        EXPECT_EQ(parallel.mean, serial.mean) << threads << " threads";
        EXPECT_EQ(parallel.halfWidth, serial.halfWidth)
            << threads << " threads";
    }
}

TEST(ParallelRunner, SeedsMatchTheSerialDerivationStream)
{
    // The seeds handed to a parallel run must be exactly the ones the
    // serial path would derive, in replication order.
    RandomGenerator seeder(7);
    std::vector<std::uint64_t> expected(5);
    for (auto &s : expected)
        s = seeder.deriveSeed();

    std::vector<std::uint64_t> seen(5, 0);
    std::size_t slot = 0;
    ParallelRunner runner(1); // serial so the capture below is ordered
    runner.runReplications(
        [&](std::uint64_t seed) {
            seen[slot++] = seed;
            return 0.0;
        },
        5, 7);
    EXPECT_EQ(seen, expected);
}

TEST(ParallelRunner, SingleReplicationHasZeroHalfWidth)
{
    ParallelRunner runner(2);
    const Estimate e =
        runner.runReplications(noisyExperiment, 1, 123);
    EXPECT_EQ(e.samples, 1u);
    EXPECT_EQ(e.halfWidth, 0.0);
    EXPECT_EQ(e.mean, noisyExperiment(RandomGenerator(123).deriveSeed()));
}

TEST(SweepSpec, EmptyAxesYieldTheBasePoint)
{
    SweepSpec spec;
    spec.base.numProcessors = 3;
    spec.base.numModules = 5;
    EXPECT_EQ(spec.size(), 1u);
    const auto points = spec.materialize();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].numProcessors, 3);
    EXPECT_EQ(points[0].numModules, 5);
}

TEST(SweepSpec, MaterializesTheCrossProductInDocumentedOrder)
{
    SweepSpec spec;
    spec.base.seed = 77;
    spec.processors = {2, 4};
    spec.memoryRatios = {2, 4, 6};
    spec.buffering = {false, true};
    EXPECT_EQ(spec.size(), 12u);

    const auto points = spec.materialize();
    ASSERT_EQ(points.size(), 12u);
    std::size_t idx = 0;
    for (int n : {2, 4}) {
        for (int r : {2, 4, 6}) {
            for (bool b : {false, true}) {
                EXPECT_EQ(points[idx].numProcessors, n);
                EXPECT_EQ(points[idx].memoryRatio, r);
                EXPECT_EQ(points[idx].buffered, b);
                EXPECT_EQ(points[idx].seed, 77u); // inherited
                ++idx;
            }
        }
    }
}

TEST(SweepSpecDeathTest, ValidateRejectsDuplicateAxisValues)
{
    SweepSpec spec;
    spec.processors = {2, 4, 2};
    EXPECT_DEATH(spec.validate(), "axis 'processors'.*twice");

    spec = SweepSpec{};
    spec.requestProbabilities = {0.1, 0.1};
    EXPECT_DEATH(spec.validate(),
                 "axis 'requestProbabilities'.*twice");

    spec = SweepSpec{};
    spec.policies = {ArbitrationPolicy::MemoryPriority,
                     ArbitrationPolicy::MemoryPriority};
    EXPECT_DEATH(spec.validate(), "axis 'policies'.*twice");

    spec = SweepSpec{};
    spec.buffering = {true, true};
    EXPECT_DEATH(spec.validate(), "axis 'buffering'.*twice");

    // materialize() validates implicitly, so no sweep entry point
    // runs a malformed grid.
    spec = SweepSpec{};
    spec.modules = {4, 4};
    EXPECT_DEATH((void)spec.materialize(), "axis 'modules'.*twice");
}

TEST(SweepSpecDeathTest, ValidateRejectsOutOfDomainAxisValues)
{
    SweepSpec spec;
    spec.processors = {0};
    EXPECT_DEATH(spec.validate(), "processors axis value");

    spec = SweepSpec{};
    spec.memoryRatios = {4, -2};
    EXPECT_DEATH(spec.validate(), "memoryRatios axis value");

    spec = SweepSpec{};
    spec.requestProbabilities = {0.5, 1.5};
    EXPECT_DEATH(spec.validate(),
                 "requestProbabilities axis value");

    // The base config is validated too.
    spec = SweepSpec{};
    spec.base.numProcessors = -1;
    EXPECT_DEATH(spec.validate(), "numProcessors");
}

TEST(SweepSpec, ValidateAcceptsWellFormedGrids)
{
    SweepSpec spec;
    spec.processors = {2, 4};
    spec.requestProbabilities = {0.1, 1.0};
    spec.validate(); // empty axes mean "base value" and are fine
    EXPECT_EQ(spec.materialize().size(), 4u);
}

TEST(ParallelRunner, SweepResultsMatchSerialEvaluationInGridOrder)
{
    SweepSpec spec;
    spec.processors = {2, 4, 8};
    spec.modules = {2, 8};
    spec.memoryRatios = {2, 4, 6, 8};

    const auto evaluate = [](const SystemConfig &cfg) {
        return cfg.numProcessors * 10000.0 + cfg.numModules * 100.0 +
               cfg.memoryRatio;
    };

    const auto points = spec.materialize();
    std::vector<double> expected;
    for (const auto &cfg : points)
        expected.push_back(evaluate(cfg));

    for (unsigned threads : {1u, 2u, 8u}) {
        ParallelRunner runner(threads);
        EXPECT_EQ(runner.sweep(spec, evaluate), expected)
            << threads << " threads";
    }
}

TEST(ParallelRunner, StreamEmitsEveryIndexInOrder)
{
    for (unsigned threads : {1u, 2u, 8u}) {
        ParallelRunner runner(threads);
        std::vector<std::size_t> order;
        std::vector<int> emitted;
        // The emit callback is serialized by the runner's emission
        // gate, so plain push_back is safe even with 8 workers.
        const auto values = runner.stream<int>(
            211, [](std::size_t i) { return static_cast<int>(i) * 3; },
            [&](std::size_t i, const int &v) {
                order.push_back(i);
                emitted.push_back(v);
            });
        ASSERT_EQ(order.size(), 211u) << threads << " threads";
        for (std::size_t i = 0; i < order.size(); ++i) {
            EXPECT_EQ(order[i], i);
            EXPECT_EQ(emitted[i], static_cast<int>(i) * 3);
            EXPECT_EQ(values[i], static_cast<int>(i) * 3);
        }
    }
}

TEST(ParallelRunner, ThrowingEmitNeverDoubleEmitsOrOvershoots)
{
    for (unsigned threads : {1u, 4u}) {
        ParallelRunner runner(threads);
        std::vector<int> emits(100, 0);
        EXPECT_THROW(
            runner.stream<int>(
                100,
                [](std::size_t i) { return static_cast<int>(i); },
                [&](std::size_t i, const int &) {
                    ++emits[i];
                    if (i == 10)
                        throw std::runtime_error("emit boom");
                }),
            std::runtime_error);
        // Emission is ordered, so everything before the throwing
        // index fired exactly once, nothing after it fired at all,
        // and the throwing index itself was not re-emitted.
        for (std::size_t i = 0; i <= 10; ++i)
            EXPECT_EQ(emits[i], 1) << "index " << i;
        for (std::size_t i = 11; i < emits.size(); ++i)
            EXPECT_EQ(emits[i], 0) << "index " << i;
    }
}

TEST(ParallelRunner, SweepStreamedMatchesSweepAndStreamsInGridOrder)
{
    SweepSpec spec;
    spec.processors = {2, 4, 8};
    spec.memoryRatios = {2, 4, 6, 8};
    const auto evaluate = [](const SystemConfig &cfg) {
        return cfg.numProcessors * 100.0 + cfg.memoryRatio;
    };

    ParallelRunner reference(1);
    const std::vector<double> expected = reference.sweep(spec, evaluate);

    for (unsigned threads : {1u, 2u, 8u}) {
        ParallelRunner runner(threads);
        std::vector<std::size_t> order;
        std::vector<double> streamed;
        const std::vector<double> grid = runner.sweepStreamed(
            spec, evaluate,
            [&](std::size_t i, const SystemConfig &cfg, double value) {
                order.push_back(i);
                streamed.push_back(value);
                EXPECT_EQ(evaluate(cfg), value);
            });
        EXPECT_EQ(grid, expected) << threads << " threads";
        EXPECT_EQ(streamed, expected) << threads << " threads";
        ASSERT_EQ(order.size(), expected.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            EXPECT_EQ(order[i], i);
    }
}

TEST(ParallelRunner, StreamedSubsetEmitsGlobalIndicesInOrder)
{
    SweepSpec spec;
    spec.base.seed = 5;
    spec.processors = {1, 2, 3, 4, 5, 6};
    const auto points = spec.materialize();
    const std::vector<std::size_t> subset{1, 2, 5};

    for (const unsigned threads : {1u, 4u}) {
        ParallelRunner runner(threads);
        std::vector<std::size_t> emitted;
        const auto values = runner.mapConfigsStreamedSubset(
            points, subset,
            [](const SystemConfig &cfg) {
                return static_cast<double>(cfg.numProcessors);
            },
            [&](std::size_t i, const SystemConfig &cfg,
                double value) {
                EXPECT_EQ(static_cast<double>(cfg.numProcessors),
                          value);
                emitted.push_back(i);
            });
        EXPECT_EQ(emitted, subset);
        EXPECT_EQ(values, (std::vector<double>{2.0, 3.0, 6.0}));
    }
}

TEST(RoundSchedule, CumulativeTargetsAreMonotoneUpToTheCap)
{
    RoundSchedule schedule;
    schedule.initial = 2;
    schedule.growth = 1.5;
    schedule.cap = 40;

    unsigned previous = 0;
    for (unsigned round = 0; round < 32; ++round) {
        const unsigned target = schedule.targetAfterRound(round);
        EXPECT_LE(target, schedule.cap);
        if (previous < schedule.cap)
            EXPECT_GT(target, previous) << "round " << round;
        else
            EXPECT_EQ(target, schedule.cap);
        previous = target;
    }
    EXPECT_EQ(previous, schedule.cap); // schedule reaches the cap
}

TEST(AdaptiveReplicator, TargetMetOrCapReached)
{
    ParallelRunner runner(1);
    PrecisionTarget target;
    target.relative = 0.02;
    RoundSchedule schedule;
    schedule.initial = 2;
    schedule.cap = 40;
    const AdaptiveReplicator replicator(runner, target, schedule);

    for (std::uint64_t seed : {1ull, 7ull, 99ull, 424242ull}) {
        const AdaptiveEstimate a =
            replicator.run(noisyExperiment, seed);
        EXPECT_GE(a.estimate.samples, 2u);
        EXPECT_LE(a.estimate.samples, 40u);
        EXPECT_GE(a.rounds, 1u);
        if (a.converged) {
            EXPECT_LE(a.estimate.halfWidth,
                      0.02 * std::abs(a.estimate.mean));
        } else {
            EXPECT_EQ(a.estimate.samples, 40u);
        }
    }
}

TEST(AdaptiveReplicator, TighteningTheTargetNeverShrinksTheRun)
{
    ParallelRunner runner(1);
    RoundSchedule schedule;
    schedule.initial = 2;
    schedule.cap = 64;

    std::uint64_t previous_samples = 0;
    for (double relative : {0.5, 0.1, 0.02, 0.004}) {
        PrecisionTarget target;
        target.relative = relative;
        const AdaptiveReplicator replicator(runner, target, schedule);
        const AdaptiveEstimate a = replicator.run(noisyExperiment, 5);
        EXPECT_GE(a.estimate.samples, previous_samples)
            << "relative target " << relative;
        previous_samples = a.estimate.samples;
    }
}

TEST(AdaptiveReplicator, BitIdenticalAcrossThreadCounts)
{
    PrecisionTarget target;
    target.relative = 0.02;
    RoundSchedule schedule;
    schedule.initial = 2;
    schedule.cap = 32;

    ParallelRunner serial_runner(1);
    const AdaptiveReplicator serial(serial_runner, target, schedule);
    const AdaptiveEstimate reference = serial.run(noisyExperiment, 7);

    for (unsigned threads :
         {2u, ThreadPool::hardwareThreads() + 1}) {
        ParallelRunner runner(threads);
        const AdaptiveReplicator replicator(runner, target, schedule);
        const AdaptiveEstimate a = replicator.run(noisyExperiment, 7);
        // Exact equality: the adaptive determinism contract.
        EXPECT_EQ(a.estimate.mean, reference.estimate.mean)
            << threads << " threads";
        EXPECT_EQ(a.estimate.halfWidth, reference.estimate.halfWidth)
            << threads << " threads";
        EXPECT_EQ(a.estimate.samples, reference.estimate.samples);
        EXPECT_EQ(a.rounds, reference.rounds);
        EXPECT_EQ(a.converged, reference.converged);
    }
}

TEST(AdaptiveReplicator, FinalEstimateMatchesOneShotReplications)
{
    // Whatever count the adaptive run stops at, the estimate must be
    // bit-identical to a one-shot run of that many replications: the
    // seed stream ignores round boundaries.
    ParallelRunner runner(4);
    PrecisionTarget target;
    target.relative = 0.05;
    const AdaptiveReplicator replicator(runner, target, {});
    const AdaptiveEstimate a = replicator.run(noisyExperiment, 31);

    const Estimate one_shot = runner.runReplications(
        noisyExperiment, static_cast<unsigned>(a.estimate.samples), 31);
    EXPECT_EQ(a.estimate.mean, one_shot.mean);
    EXPECT_EQ(a.estimate.halfWidth, one_shot.halfWidth);
    EXPECT_EQ(a.estimate.samples, one_shot.samples);
}

/** Per-point experiment whose variance scales with the point's r, so
    a sweep mixes early- and late-converging grid points. */
double
pointExperiment(const SystemConfig &cfg, std::uint64_t seed)
{
    RandomGenerator rng(seed);
    double acc = 0.0;
    for (int i = 0; i < 50; ++i)
        acc += 10.0 + rng.uniformReal() * cfg.memoryRatio;
    return acc / 50.0;
}

TEST(AdaptiveReplicator, SweepStreamsFinalizedPointsInFlatOrder)
{
    SweepSpec spec;
    spec.base.seed = 2026;
    spec.processors = {2, 4};
    spec.memoryRatios = {1, 2, 4, 8, 16, 32};

    PrecisionTarget target;
    target.relative = 0.01;
    RoundSchedule schedule;
    schedule.initial = 2;
    schedule.cap = 64;

    ParallelRunner serial_runner(1);
    const AdaptiveReplicator serial(serial_runner, target, schedule);
    const std::vector<AdaptiveEstimate> reference =
        serial.sweep(spec, pointExperiment);
    ASSERT_EQ(reference.size(), 12u);

    // Wider variances need more rounds - the sweep must be genuinely
    // adaptive for the streaming order to be worth testing.
    EXPECT_GT(reference.back().estimate.samples,
              reference.front().estimate.samples);

    for (unsigned threads :
         {1u, 2u, ThreadPool::hardwareThreads() + 1}) {
        ParallelRunner runner(threads);
        const AdaptiveReplicator replicator(runner, target, schedule);
        std::vector<std::size_t> order;
        const std::vector<AdaptiveEstimate> results =
            replicator.sweep(
                spec, pointExperiment,
                [&](std::size_t i, const SystemConfig &cfg,
                    const AdaptiveEstimate &estimate) {
                    order.push_back(i);
                    EXPECT_EQ(cfg.memoryRatio,
                              spec.memoryRatios[i % 6]);
                    EXPECT_EQ(estimate.estimate.samples,
                              reference[i].estimate.samples);
                });
        ASSERT_EQ(order.size(), 12u) << threads << " threads";
        for (std::size_t i = 0; i < order.size(); ++i)
            EXPECT_EQ(order[i], i);
        for (std::size_t i = 0; i < results.size(); ++i) {
            EXPECT_EQ(results[i].estimate.mean,
                      reference[i].estimate.mean)
                << threads << " threads, point " << i;
            EXPECT_EQ(results[i].estimate.halfWidth,
                      reference[i].estimate.halfWidth);
            EXPECT_EQ(results[i].estimate.samples,
                      reference[i].estimate.samples);
            EXPECT_EQ(results[i].rounds, reference[i].rounds);
            EXPECT_EQ(results[i].converged, reference[i].converged);
        }
    }
}

TEST(AdaptiveReplicator, SweepStressManyPointsThreadCountInvariant)
{
    SweepSpec spec;
    spec.base.seed = 77;
    spec.processors = {2, 4, 8, 16};
    spec.modules = {2, 4};
    spec.memoryRatios = {1, 3, 9, 27};

    PrecisionTarget target;
    target.relative = 0.015;
    RoundSchedule schedule;
    schedule.initial = 2;
    schedule.growth = 3.0;
    schedule.cap = 30;

    ParallelRunner serial_runner(1);
    const AdaptiveReplicator serial(serial_runner, target, schedule);
    const std::vector<AdaptiveEstimate> reference =
        serial.sweep(spec, pointExperiment);
    ASSERT_EQ(reference.size(), 32u);

    ParallelRunner runner(ThreadPool::hardwareThreads() + 3);
    const AdaptiveReplicator replicator(runner, target, schedule);
    const std::vector<AdaptiveEstimate> results =
        replicator.sweep(spec, pointExperiment);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].estimate.mean, reference[i].estimate.mean)
            << "point " << i;
        EXPECT_EQ(results[i].estimate.halfWidth,
                  reference[i].estimate.halfWidth);
        EXPECT_EQ(results[i].estimate.samples,
                  reference[i].estimate.samples);
        EXPECT_EQ(results[i].converged, reference[i].converged);
        if (results[i].converged) {
            EXPECT_LE(results[i].estimate.halfWidth,
                      0.015 * std::abs(results[i].estimate.mean));
        } else {
            EXPECT_EQ(results[i].estimate.samples, 30u);
        }
    }
}

TEST(ThreadPool, ThrowingTaskDoesNotKillTheWorkers)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 8; ++i) {
            pool.post([] { throw std::runtime_error("task boom"); });
            pool.post([] { throw 42; }); // non-std exceptions too
            pool.post([&] { ++ran; });
        }
        // Destructor drains the queue; every non-throwing task must
        // still have run on a live worker.
    }
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, CleanShutdownWithQueuedBacklog)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(3);
        // Far more tasks than workers, so a deep backlog is still
        // queued when the destructor starts; shutdown must drain it.
        for (int i = 0; i < 5000; ++i)
            pool.post([&] { ++ran; });
    }
    EXPECT_EQ(ran.load(), 5000);
}

TEST(ParallelRunner, StaysUsableAfterWorkerException)
{
    ParallelRunner runner(4);
    for (int attempt = 0; attempt < 3; ++attempt) {
        EXPECT_THROW(
            runner.forEachIndex(64,
                                [](std::size_t i) {
                                    if (i % 7 == 3)
                                        throw std::runtime_error(
                                            "boom");
                                }),
            std::runtime_error);

        // The same runner (and its pool) must keep working after the
        // propagated failure.
        const auto squares = runner.map<int>(50, [](std::size_t i) {
            return static_cast<int>(i * i);
        });
        ASSERT_EQ(squares.size(), 50u);
        for (std::size_t i = 0; i < squares.size(); ++i)
            EXPECT_EQ(squares[i], static_cast<int>(i * i));

        const Estimate e =
            runner.runReplications(noisyExperiment, 5, 11);
        EXPECT_EQ(e.samples, 5u);
    }
}

TEST(Exec, DefaultThreadsOverrideRoundTrips)
{
    const unsigned before = defaultExecThreads();
    setDefaultExecThreads(3);
    EXPECT_EQ(defaultExecThreads(), 3u);
    setDefaultExecThreads(0); // back to environment resolution
    EXPECT_EQ(defaultExecThreads(), before);
    EXPECT_GE(defaultExecThreads(), 1u);
}

TEST(Exec, ParseThreadsSpecAcceptsSaneValues)
{
    EXPECT_EQ(parseThreadsSpec("1"), 1u);
    EXPECT_EQ(parseThreadsSpec("16"), 16u);
    EXPECT_EQ(parseThreadsSpec("4096"), 4096u);
    EXPECT_EQ(parseThreadsSpec(" 8 "), 8u);
    EXPECT_EQ(parseThreadsSpec("0"), 0u); // 0 = all hardware threads
}

TEST(Exec, ParseThreadsSpecRejectsGarbageLoudly)
{
    // A typo in SBN_THREADS must fail fast with a clear message, not
    // silently fall back to serial execution.
    EXPECT_DEATH((void)parseThreadsSpec(""), "empty value");
    EXPECT_DEATH((void)parseThreadsSpec("   "), "empty value");
    EXPECT_DEATH((void)parseThreadsSpec("four"), "not a number");
    EXPECT_DEATH((void)parseThreadsSpec("8x"), "not a number");
    EXPECT_DEATH((void)parseThreadsSpec("2.5"), "not a number");
    EXPECT_DEATH((void)parseThreadsSpec("-4"), "negative");
    EXPECT_DEATH((void)parseThreadsSpec("5000"), "out of range");
    EXPECT_DEATH((void)parseThreadsSpec("99999999999999999999"),
                 "out of range");
}

} // namespace
} // namespace sbn
