/**
 * @file
 * Capacity planning: the paper's Section 7 design workflow. Given a
 * crossbar reference system (expensive: n*m crosspoints), find the
 * cheapest multiplexed single-bus configuration (n+m connections)
 * that matches its effective bandwidth, trading extra memory modules
 * and memory/bus speed ratio - with and without Section-6 buffers.
 *
 *   ./capacity_planning --n=8 --target=8 --max-m=24 --max-r=24
 *
 * finds configurations matching the 8x8 crossbar (the paper's
 * conclusion: m=14, r=8 unbuffered; fewer modules suffice buffered).
 */

#include <cstdio>
#include <iostream>

#include "analytic/crossbar.hh"
#include "core/experiment.hh"
#include "exec/parallel_runner.hh"
#include "exec/sweep.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace sbn;

    const CommandLine cli(
        argc, argv,
        {{"n", "processors (default 8)"},
         {"target", "crossbar is n x target (default = n)"},
         {"max-m", "largest module count to try (default 24)"},
         {"max-r", "largest speed ratio to try (default 24)"},
         {"tolerance", "match tolerance, fraction (default 0.01)"},
         {"threads", "worker threads for the design-space sweep "
                     "(default: all hardware threads)"}});

    const int n = static_cast<int>(cli.getInt("n", 8));
    const int xm = static_cast<int>(cli.getInt("target", n));
    const int max_m = static_cast<int>(cli.getInt("max-m", 24));
    const int max_r = static_cast<int>(cli.getInt("max-r", 24));
    const double tol = cli.getDouble("tolerance", 0.01);
    const long threads_arg = cli.getInt("threads", 0);
    if (threads_arg < 0 || threads_arg > 4096) {
        std::fprintf(stderr, "--threads must be in [0, 4096]\n");
        return 2;
    }
    ParallelRunner runner(static_cast<unsigned>(threads_arg));

    const double target = crossbarEbw(n, xm);
    std::printf("reference: %dx%d crossbar, EBW = %.3f (%d crosspoints)"
                "\ngoal: single-bus EBW >= %.3f (%.0f%% of target)\n\n",
                n, xm, target, n * xm, target * (1.0 - tol),
                100.0 * (1.0 - tol));

    for (bool buffered : {false, true}) {
        TextTable table(buffered ? "buffered memory modules"
                                 : "unbuffered");
        table.setHeader(
            {"m", "min r matching", "EBW there", "links n+m"});
        // The whole m x r design space runs as one parallel sweep;
        // the serial early-break per row becomes a scan of the
        // already-computed row (same answers, all cores busy).
        SweepSpec spec;
        spec.base.numProcessors = n;
        spec.base.buffered = buffered;
        spec.base.measureCycles = 200000;
        for (int m = n / 2; m <= max_m; m += 2)
            spec.modules.push_back(m);
        for (int r = 2; r <= max_r; r += 2)
            spec.memoryRatios.push_back(r);
        const std::vector<double> grid = runner.sweep(
            spec, [](const SystemConfig &cfg) { return runEbw(cfg); });
        const std::size_t num_rs = spec.memoryRatios.size();

        int found_any = 0;
        for (std::size_t mi = 0; mi < spec.modules.size(); ++mi) {
            const int m = spec.modules[mi];
            int best_r = -1;
            double best_e = 0.0;
            for (std::size_t ri = 0; ri < num_rs; ++ri) {
                const double e = grid[mi * num_rs + ri];
                if (e >= target * (1.0 - tol)) {
                    best_r = spec.memoryRatios[ri];
                    best_e = e;
                    break;
                }
                best_e = std::max(best_e, e);
            }
            if (best_r > 0) {
                table.addRow({std::to_string(m), std::to_string(best_r),
                              TextTable::formatNumber(best_e, 3),
                              std::to_string(n + m)});
                ++found_any;
            } else {
                table.addRow({std::to_string(m), "-",
                              TextTable::formatNumber(best_e, 3),
                              std::to_string(n + m)});
            }
        }
        table.print(std::cout);
        if (!found_any)
            std::printf("no matching configuration up to m=%d, r=%d\n",
                        max_m, max_r);
        std::printf("\n");
    }

    std::printf("reading: each row gives the smallest memory/bus speed "
                "ratio r at which m modules\nmatch the crossbar; '-' "
                "means unreachable. Buffering reaches the target with\n"
                "fewer modules or a smaller ratio (Section 7: a "
                "buffered bus with r=18 performs\nlike a 16x16 "
                "crossbar).\n");
    return 0;
}
