/**
 * @file
 * Buffering study: quantify what the Section-6 input/output buffers
 * buy across the memory/bus speed ratio, including the waiting-time
 * distribution shift.
 *
 *   ./buffered_speedup --n=8 --m=16 --rs=4,8,12,16,20,24
 */

#include <cstdio>
#include <iostream>

#include "core/experiment.hh"
#include "exec/parallel_runner.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace sbn;

    const CommandLine cli(
        argc, argv,
        {{"n", "processors (default 8)"},
         {"m", "memory modules (default 16)"},
         {"rs", "comma-separated r values (default 4,8,12,16,20,24)"},
         {"p", "request probability (default 1.0)"},
         {"threads", "worker threads for the sweep (default: all "
                     "hardware threads)"},
         {"histogram", "also print waiting histograms at the last r"}});

    const int n = static_cast<int>(cli.getInt("n", 8));
    const int m = static_cast<int>(cli.getInt("m", 16));
    const auto rs = cli.getIntList("rs", {4, 8, 12, 16, 20, 24});
    const double p = cli.getDouble("p", 1.0);

    std::printf("buffering speedup, %dx%d, p = %.2f, processor "
                "priority\n\n",
                n, m, p);

    TextTable table;
    table.setHeader({"r", "EBW plain", "EBW buffered", "speedup %",
                     "wait plain", "wait buffered", "module util "
                     "plain", "module util buf"});

    // Materialize the (r, buffered) grid and run every point through
    // the execution layer; full metrics come back in grid order.
    std::vector<SystemConfig> points;
    for (auto r64 : rs) {
        SystemConfig cfg;
        cfg.numProcessors = n;
        cfg.numModules = m;
        cfg.memoryRatio = static_cast<int>(r64);
        cfg.requestProbability = p;
        cfg.measureCycles = 300000;
        cfg.buffered = false;
        points.push_back(cfg);
        cfg.buffered = true;
        points.push_back(cfg);
    }
    const long threads_arg = cli.getInt("threads", 0);
    if (threads_arg < 0 || threads_arg > 4096) {
        std::fprintf(stderr, "--threads must be in [0, 4096]\n");
        return 2;
    }
    ParallelRunner runner(static_cast<unsigned>(threads_arg));
    const std::vector<Metrics> metrics = runner.map<Metrics>(
        points.size(),
        [&](std::size_t i) { return runOnce(points[i]); });

    for (std::size_t i = 0; i < rs.size(); ++i) {
        const int r = static_cast<int>(rs[i]);
        const Metrics &plain = metrics[2 * i];
        const Metrics &buf = metrics[2 * i + 1];

        table.addRow(
            {std::to_string(r),
             TextTable::formatNumber(plain.ebw, 3),
             TextTable::formatNumber(buf.ebw, 3),
             TextTable::formatNumber(
                 100.0 * (buf.ebw / plain.ebw - 1.0), 1),
             TextTable::formatNumber(plain.meanWaitCycles, 1),
             TextTable::formatNumber(buf.meanWaitCycles, 1),
             TextTable::formatNumber(plain.meanModuleUtilization, 3),
             TextTable::formatNumber(buf.meanModuleUtilization, 3)});
    }
    table.print(std::cout);

    if (cli.getBool("histogram", false) && !rs.empty()) {
        const int r = static_cast<int>(rs.back());
        for (bool buffered : {false, true}) {
            SystemConfig cfg;
            cfg.numProcessors = n;
            cfg.numModules = m;
            cfg.memoryRatio = r;
            cfg.requestProbability = p;
            cfg.buffered = buffered;
            cfg.collectWaitHistogram = true;
            cfg.measureCycles = 300000;
            const Metrics metrics = runOnce(cfg);
            std::printf("\nwaiting-time histogram, r=%d, %s:\n%s", r,
                        buffered ? "buffered" : "plain",
                        metrics.waitHistogram->render().c_str());
        }
    }

    std::printf("\nnote: buffered waits can be LONGER per request "
                "while EBW is higher - requests\nqueue inside modules "
                "instead of blocking the processors' issue slots.\n");
    return 0;
}
