/**
 * @file
 * Model-validation workflow: for one system shape, line up every
 * analytical model in the library against the cycle-accurate
 * simulator - the workflow Sections 3-6 of the paper go through.
 *
 *   ./model_vs_sim --n=8 --m=8 --r=8
 */

#include <cstdio>
#include <iostream>

#include "analytic/crossbar.hh"
#include "analytic/memprio.hh"
#include "analytic/multibus.hh"
#include "analytic/mva.hh"
#include "analytic/procprio.hh"
#include "core/experiment.hh"
#include "exec/thread_pool.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace sbn;

    const CommandLine cli(
        argc, argv,
        {{"n", "processors (default 8)"},
         {"m", "memory modules (default 8)"},
         {"r", "memory/bus cycle ratio (default 8)"},
         {"rel", "target relative CI half-width in percent "
                 "(default 1)"},
         {"cap", "replication cap per estimate (default 16)"},
         {"threads", "worker threads for the replications (default: "
                     "all hardware threads; results identical at any "
                     "count)"}});

    const int n = static_cast<int>(cli.getInt("n", 8));
    const int m = static_cast<int>(cli.getInt("m", 8));
    const int r = static_cast<int>(cli.getInt("r", 8));
    const double rel = cli.getDouble("rel", 1.0);
    const long cap_arg = cli.getInt("cap", 16);
    const long threads_arg = cli.getInt("threads", 0);
    if (threads_arg < 0 || threads_arg > 4096) {
        std::fprintf(stderr, "--threads must be in [0, 4096]\n");
        return 2;
    }
    auto threads = static_cast<unsigned>(threads_arg);
    if (threads == 0)
        threads = ThreadPool::hardwareThreads();

    if (rel <= 0.0 || cap_arg < 2 || cap_arg > 100000) {
        std::fprintf(stderr,
                     "--rel must be positive, --cap in [2, 100000]\n");
        return 2;
    }
    const auto cap = static_cast<unsigned>(cap_arg);

    std::printf("model vs simulation, %dx%d, r=%d, p=1\n"
                "(adaptive replication: CI half-width target %.2f%% "
                "of the mean, cap %u)\n\n",
                n, m, r, rel, cap);

    // Adaptive precision: each simulation estimate grows its
    // replication count in deterministic rounds until the 95% CI
    // half-width meets the relative target or the cap. The estimate
    // is bit-identical at any thread count.
    PrecisionTarget target;
    target.relative = rel / 100.0;
    RoundSchedule schedule;
    schedule.initial = 2;
    schedule.cap = cap;

    auto simulate = [&](ArbitrationPolicy policy, bool buffered) {
        SystemConfig cfg;
        cfg.numProcessors = n;
        cfg.numModules = m;
        cfg.memoryRatio = r;
        cfg.policy = policy;
        cfg.buffered = buffered;
        cfg.measureCycles = 200000;
        return replicateEbwToPrecision(cfg, target, schedule, threads);
    };

    TextTable table;
    table.setHeader({"quantity", "model", "simulation (95% CI)",
                     "reps", "rel err %"});
    auto row = [&](const char *what, double model,
                   const AdaptiveEstimate &sim) {
        const Estimate &e = sim.estimate;
        table.addRow(
            {what, TextTable::formatNumber(model, 3),
             TextTable::formatNumber(e.mean, 3) + " +/- " +
                 TextTable::formatNumber(e.halfWidth, 3),
             std::to_string(e.samples) + (sim.converged ? "" : "*"),
             TextTable::formatNumber(
                 100.0 * (model - e.mean) / e.mean, 2)});
    };

    const auto sim_mem =
        simulate(ArbitrationPolicy::MemoryPriority, false);
    row("EBW, mem priority (S3.1.1 exact chain)",
        memprioExactEbw(n, m, r), sim_mem);
    row("EBW, mem priority (S3.2 approximation)",
        memprioApproxEbw(n, m, r), sim_mem);

    const auto sim_proc =
        simulate(ArbitrationPolicy::ProcessorPriority, false);
    const ProcPrioChain chain(n, m, r);
    row("EBW, proc priority (S4 reduced chain)", chain.ebw(), sim_proc);

    const auto sim_buf =
        simulate(ArbitrationPolicy::ProcessorPriority, true);
    row("EBW, buffered (S6 exponential MVA)", mvaBufferedBus(n, m, r).ebw,
        sim_buf);

    table.print(std::cout);

    std::printf("\n('*' in the reps column: the replication cap was "
                "reached before the CI target)\n");
    std::printf("\ncontext: crossbar(%d,%d) EBW = %.3f; bus ceiling "
                "(r+2)/2 = %.1f\n",
                n, m, crossbarEbw(n, m), (r + 2) / 2.0);
    std::printf("\nexpected: the S3.1.1 chain is within a couple of "
                "percent (exact under its own\nround abstraction); S3.2 "
                "and S4 are approximations (<9%%); the exponential "
                "MVA\nunderestimates sharply in congested regions - "
                "that mismatch is the paper's\nSection 6 argument for "
                "simulating constant service times.\n");
    return 0;
}
