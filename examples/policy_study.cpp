/**
 * @file
 * Arbitration-policy study: sweep the memory/bus cycle ratio r and
 * compare the two bus-grant priorities (the paper's g' and g''), in
 * simulation and against the matching analytical models.
 *
 *   ./policy_study --n=8 --m=8 --rs=2,4,8,12,16
 *
 * This reproduces the Section 3 finding that processor priority
 * dominates, and shows how close the Section 3.1.1 / Section 4
 * chains track the simulator.
 */

#include <cstdio>
#include <iostream>

#include "analytic/memprio.hh"
#include "analytic/procprio.hh"
#include "core/experiment.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace sbn;

    const CommandLine cli(
        argc, argv,
        {{"n", "processors (default 8)"},
         {"m", "memory modules (default 8)"},
         {"rs", "comma-separated r values (default 2,4,8,12,16)"},
         {"cycles", "measured cycles per point (default 300000)"}});

    const int n = static_cast<int>(cli.getInt("n", 8));
    const int m = static_cast<int>(cli.getInt("m", 8));
    const auto rs = cli.getIntList("rs", {2, 4, 8, 12, 16});

    std::printf("bus-grant policy study, %dx%d, p = 1\n\n", n, m);

    TextTable table;
    table.setHeader({"r", "sim g' (proc)", "chain g'", "sim g'' (mem)",
                     "chain g''", "g' gain %"});

    for (auto r64 : rs) {
        const int r = static_cast<int>(r64);
        SystemConfig cfg;
        cfg.numProcessors = n;
        cfg.numModules = m;
        cfg.memoryRatio = r;
        cfg.measureCycles =
            static_cast<Tick>(cli.getInt("cycles", 300000));

        cfg.policy = ArbitrationPolicy::ProcessorPriority;
        const double sim_proc = runEbw(cfg);
        cfg.policy = ArbitrationPolicy::MemoryPriority;
        const double sim_mem = runEbw(cfg);

        const ProcPrioChain chain(n, m, r);
        const double model_proc = chain.ebw();
        const double model_mem = memprioExactEbw(n, m, r);

        table.addRow(
            {std::to_string(r), TextTable::formatNumber(sim_proc, 3),
             TextTable::formatNumber(model_proc, 3),
             TextTable::formatNumber(sim_mem, 3),
             TextTable::formatNumber(model_mem, 3),
             TextTable::formatNumber(
                 100.0 * (sim_proc / sim_mem - 1.0), 1)});
    }
    table.print(std::cout);

    std::printf("\ng': priority to processor requests; g'': priority "
                "to memory responses.\n'chain g'' is the exact Section "
                "3.1.1 model; 'chain g'' the Section 4 reduced "
                "chain.\n");
    return 0;
}
