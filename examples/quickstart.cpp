/**
 * @file
 * Quickstart: build one multiplexed single-bus system, run it, and
 * print every metric the library measures.
 *
 *   ./quickstart --n=8 --m=16 --r=8 --p=1.0 --policy=proc \
 *                --buffered --seed=42
 */

#include <cstdio>
#include <iostream>

#include "core/experiment.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace sbn;

    const CommandLine cli(
        argc, argv,
        {{"n", "number of processors (default 8)"},
         {"m", "number of memory modules (default 16)"},
         {"r", "memory cycle / bus cycle ratio (default 8)"},
         {"p", "re-request probability (default 1.0)"},
         {"policy", "bus priority: proc | mem (default proc)"},
         {"buffered", "enable Section-6 memory buffers"},
         {"cycles", "measured bus cycles (default 400000)"},
         {"seed", "RNG seed (default 1)"},
         {"histogram", "print the waiting-time histogram"}});

    SystemConfig cfg;
    cfg.numProcessors = static_cast<int>(cli.getInt("n", 8));
    cfg.numModules = static_cast<int>(cli.getInt("m", 16));
    cfg.memoryRatio = static_cast<int>(cli.getInt("r", 8));
    cfg.requestProbability = cli.getDouble("p", 1.0);
    cfg.policy = cli.getString("policy", "proc") == "mem"
                     ? ArbitrationPolicy::MemoryPriority
                     : ArbitrationPolicy::ProcessorPriority;
    cfg.buffered = cli.getBool("buffered", false);
    cfg.measureCycles = static_cast<Tick>(cli.getInt("cycles", 400000));
    cfg.seed = static_cast<std::uint64_t>(cli.getInt("seed", 1));
    cfg.collectWaitHistogram = cli.getBool("histogram", false);

    std::printf("multiplexed single-bus system: n=%d processors, m=%d "
                "modules, r=%d, p=%.2f,\n%s priority, %s\n\n",
                cfg.numProcessors, cfg.numModules, cfg.memoryRatio,
                cfg.requestProbability,
                cfg.policy == ArbitrationPolicy::ProcessorPriority
                    ? "processor"
                    : "memory",
                cfg.buffered ? "buffered memory modules" : "unbuffered");

    const Metrics m = runOnce(cfg);

    TextTable table("steady-state metrics over " +
                    std::to_string(m.measuredCycles) + " bus cycles");
    table.setHeader({"metric", "value"});
    auto add = [&](const char *name, double v, int prec = 4) {
        table.addRow({name, TextTable::formatNumber(v, prec)});
    };
    add("EBW (services per processor cycle)", m.ebw);
    add("EBW ceiling (r+2)/2", cfg.maxEbw(), 1);
    add("EBW via Pb*(r+2)/2", m.ebwFromBusUtilization);
    add("bus utilization Pb", m.busUtilization);
    add("mean module utilization", m.meanModuleUtilization);
    add("processor efficiency EBW/n", m.processorEfficiency);
    add("mean wait (bus cycles)", m.meanWaitCycles, 2);
    add("mean service span (bus cycles)", m.meanServiceCycles, 2);
    table.addRow({"completed requests",
                  std::to_string(m.completedRequests)});
    table.print(std::cout);

    // A replicated confidence interval on EBW.
    const Estimate est = replicateEbw(cfg, 5);
    std::printf("\nEBW over 5 independent replications: %.4f +/- %.4f "
                "(95%% CI)\n",
                est.mean, est.halfWidth);

    if (m.waitHistogram) {
        std::printf("\nwaiting time distribution (bus cycles):\n%s",
                    m.waitHistogram->render().c_str());
    }
    return 0;
}
