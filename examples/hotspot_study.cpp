/**
 * @file
 * Hot-spot traffic study (extension beyond paper hypothesis (e)):
 * skew the memory-reference distribution so one module receives a
 * growing share of the traffic and watch the single bus degrade,
 * with and without Section-6 buffers.
 *
 *   ./hotspot_study --n=8 --m=8 --r=8 --weights=1,2,4,8,16
 *
 * The uniform-reference assumption is the best case for every
 * interconnect in this family; this example quantifies how much of
 * the paper's headline EBW survives realistic skew.
 */

#include <cstdio>
#include <iostream>

#include "analytic/crossbar.hh"
#include "core/experiment.hh"
#include "util/cli.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace sbn;

    const CommandLine cli(
        argc, argv,
        {{"n", "processors (default 8)"},
         {"m", "memory modules (default 8)"},
         {"r", "memory/bus cycle ratio (default 8)"},
         {"weights", "comma-separated hot-module weights to sweep "
                     "(default 1,2,4,8,16)"}});

    const int n = static_cast<int>(cli.getInt("n", 8));
    const int m = static_cast<int>(cli.getInt("m", 8));
    const int r = static_cast<int>(cli.getInt("r", 8));
    const auto hot_weights =
        cli.getIntList("weights", {1, 2, 4, 8, 16});

    std::printf("hot-spot study, %dx%d, r=%d, p=1: module 0 weighted "
                "w, others 1\n(uniform crossbar EBW for context: "
                "%.3f)\n\n",
                n, m, r, crossbarEbw(n, m));

    TextTable table;
    table.setHeader({"hot weight", "hot traffic share %",
                     "EBW unbuffered", "EBW buffered", "buffered "
                     "gain %", "hot module util"});

    for (auto w64 : hot_weights) {
        const auto w = static_cast<double>(w64);
        std::vector<double> weights(m, 1.0);
        weights[0] = w;
        const double share = w / (w + (m - 1));

        SystemConfig cfg;
        cfg.numProcessors = n;
        cfg.numModules = m;
        cfg.memoryRatio = r;
        cfg.workload.pattern = ReferencePattern::Weighted;
        cfg.workload.moduleWeights = weights;
        cfg.measureCycles = 300000;

        cfg.buffered = false;
        const Metrics plain = runOnce(cfg);
        cfg.buffered = true;
        const Metrics buf = runOnce(cfg);

        // Per-module utilization of the hot module approaches 1 as it
        // becomes the bottleneck; approximate it from the aggregate:
        // total access cycles concentrate on module 0.
        table.addRow(
            {TextTable::formatNumber(w, 0),
             TextTable::formatNumber(100.0 * share, 1),
             TextTable::formatNumber(plain.ebw, 3),
             TextTable::formatNumber(buf.ebw, 3),
             TextTable::formatNumber(
                 100.0 * (buf.ebw / plain.ebw - 1.0), 1),
             TextTable::formatNumber(
                 buf.meanModuleUtilization * m * share, 3)});
    }
    table.print(std::cout);

    std::printf("\nupper bound with a single hot module receiving "
                "share s of the traffic:\nEBW <= (r+2)/(r*s) (the hot "
                "module serializes its share). Buffering keeps\nthe "
                "module fed back-to-back but cannot beat that bound.\n");
    return 0;
}
