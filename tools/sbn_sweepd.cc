/**
 * @file
 * sbn_sweepd: crash-safe sweep job daemon.
 *
 *   sbn_sweepd --state=DIR [--port=P] [--queue-limit=N]
 *              [--max-running=N] [--job-retries=N] [--heartbeat=S]
 *              [--shards=N]
 *
 * Accepts sweep jobs over a line-delimited JSON TCP protocol
 * (docs/service.md), journals every job-state transition to
 * DIR/jobs.jsonl before acting on it, and runs each job through the
 * ShardSupervisor fleet in a forked runner process. Kill the daemon
 * at any instant and restart it with the same --state: every
 * acknowledged job resumes from its journal entry and shard records,
 * and recovered results are byte-identical to uninterrupted ones.
 *
 * The bound port is published to DIR/port once listening; a liveness
 * heartbeat is rewritten to DIR/heartbeat every --heartbeat seconds.
 * `{"cmd":"drain"}` stops intake, finishes the queue, and exits 0.
 */

#include <map>
#include <string>

#include "service/daemon.hh"
#include "util/cli.hh"
#include "util/logging.hh"

int
main(int argc, char **argv)
{
    using namespace sbn;

    const std::map<std::string, std::string> known{
        {"state", "state directory: job journal, job dirs, port and "
                  "heartbeat files (required)"},
        {"port", "TCP port on 127.0.0.1 (default 0 = "
                 "kernel-assigned; see the state dir's port file)"},
        {"queue-limit", "max queued jobs before submits get "
                        "queue_full (default 8)"},
        {"max-running", "max concurrent job runner processes "
                        "(default 1)"},
        {"job-retries", "relaunches (with resume) when a runner dies "
                        "on a signal (default 2)"},
        {"heartbeat", "seconds between heartbeat-file rewrites "
                      "(default 1)"},
        {"shards", "worker count for specs without --spawn "
                   "(default 1)"},
    };
    const CommandLine cli(argc, argv, known);

    DaemonConfig config;
    config.stateDir = cli.getString("state", "");
    const std::int64_t port = cli.getInt("port", 0);
    if (port < 0 || port > 65535)
        sbn_fatal("--port must be 0..65535 (got ", port, ")");
    config.port = static_cast<int>(port);
    const std::int64_t queueLimit = cli.getInt("queue-limit", 8);
    if (queueLimit < 1)
        sbn_fatal("--queue-limit must be >= 1 (got ", queueLimit,
                  ")");
    config.queueLimit = static_cast<std::size_t>(queueLimit);
    const std::int64_t maxRunning = cli.getInt("max-running", 1);
    if (maxRunning < 1)
        sbn_fatal("--max-running must be >= 1 (got ", maxRunning,
                  ")");
    config.maxRunning = static_cast<std::size_t>(maxRunning);
    const std::int64_t retries = cli.getInt("job-retries", 2);
    if (retries < 0)
        sbn_fatal("--job-retries must be >= 0 (got ", retries, ")");
    config.jobRetries = static_cast<unsigned>(retries);
    config.heartbeatSeconds = cli.getDouble("heartbeat", 1.0);
    if (!(config.heartbeatSeconds > 0))
        sbn_fatal("--heartbeat must be > 0 seconds");
    const std::int64_t shards = cli.getInt("shards", 1);
    if (shards < 1)
        sbn_fatal("--shards must be >= 1 (got ", shards, ")");
    config.defaultShards = static_cast<std::size_t>(shards);

    return runSweepDaemon(config);
}
