/**
 * @file
 * Trace-shard merger: turn the per-process sbn.trace.v1 span shards
 * a traced run leaves behind (trace/span.hh) into one timeline.
 *
 *   sbn_trace --dir=DIR --merge [> trace.json]
 *       Merge every trace-<pid>.jsonl shard under DIR into one
 *       Chrome-trace-event JSON object ({"traceEvents":[...]}) that
 *       Perfetto (ui.perfetto.dev) and chrome://tracing load
 *       directly. Timestamps are rebased to the earliest span start,
 *       events are sorted by start time, and every event carries its
 *       trace/span/parent ids and attributes in "args".
 *
 *   sbn_trace --dir=DIR --summary
 *       Human-readable digest: per-span-kind totals, the slowest
 *       shard attempts, and each trace's critical path (the chain
 *       from its root span following the latest-ending child).
 *
 *   sbn_trace --dir=DIR --check
 *       Validation for CI: every shard line must parse as a complete
 *       sbn.trace.v1 span, every span must close after it opens, and
 *       every child must start no earlier than its parent (the spans
 *       share one host's monotonic clock, so cross-process nesting
 *       is checkable). Exits nonzero naming the first violation.
 *
 * The modes compose: --merge --check validates before emitting.
 */

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "service/protocol.hh"
#include "util/cli.hh"
#include "util/logging.hh"

namespace {

using namespace sbn;

/** One parsed sbn.trace.v1 span. */
struct TraceSpan
{
    std::uint64_t trace = 0;
    std::uint64_t span = 0;
    std::uint64_t parent = 0;
    std::string kind;
    std::string name;
    long long pid = 0;
    std::uint64_t startUs = 0;
    std::uint64_t endUs = 0;
    std::vector<std::pair<std::string, std::string>> attrs;
    std::string file; //!< shard the span came from (diagnostics)
    std::size_t line = 0;
};

bool
parseHexId(const std::string &text, std::uint64_t &out)
{
    if (text.empty() || text.size() > 16 ||
        text.find_first_not_of("0123456789abcdef") !=
            std::string::npos)
        return false;
    out = std::strtoull(text.c_str(), nullptr, 16);
    return true;
}

/** The trace-<pid>.jsonl shards under @p dir, sorted by name. */
std::vector<std::string>
findShards(const std::string &dir)
{
    DIR *handle = ::opendir(dir.c_str());
    if (handle == nullptr)
        sbn_fatal("cannot open trace directory '", dir, "'");
    std::vector<std::string> shards;
    while (dirent *entry = ::readdir(handle)) {
        const std::string name = entry->d_name;
        if (name.size() > 12 && name.compare(0, 6, "trace-") == 0 &&
            name.compare(name.size() - 6, 6, ".jsonl") == 0)
            shards.push_back(dir + "/" + name);
    }
    ::closedir(handle);
    std::sort(shards.begin(), shards.end());
    return shards;
}

/**
 * Parse one shard line into @p span; on failure @p error says why.
 * Unknown a_-prefixed keys become attributes; unknown bare keys are
 * an error (the format is versioned precisely so drift is loud).
 */
bool
parseSpanLine(const std::string &line, TraceSpan &span,
              std::string &error)
{
    JsonObject fields;
    if (!parseFlatJsonObject(line, fields, error))
        return false;
    const auto text = [&](const char *key, std::string &out) {
        const auto it = fields.find(key);
        if (it == fields.end() ||
            it->second.kind != JsonScalar::Kind::String) {
            error = std::string("missing string field '") + key + "'";
            return false;
        }
        out = it->second.text;
        fields.erase(it);
        return true;
    };
    const auto number = [&](const char *key, std::uint64_t &out,
                            bool &ok) {
        const auto it = fields.find(key);
        if (it == fields.end() ||
            it->second.kind != JsonScalar::Kind::Number ||
            it->second.number < 0) {
            error = std::string("missing numeric field '") + key + "'";
            ok = false;
            return;
        }
        out = static_cast<std::uint64_t>(it->second.number);
        fields.erase(it);
    };

    std::string type, traceHex, spanHex, parentHex;
    if (!text("type", type) || !text("trace", traceHex) ||
        !text("span", spanHex) || !text("parent", parentHex) ||
        !text("kind", span.kind) || !text("name", span.name))
        return false;
    if (type != "sbn.trace.v1") {
        error = "unknown record type '" + type + "'";
        return false;
    }
    if (!parseHexId(traceHex, span.trace) ||
        !parseHexId(spanHex, span.span) ||
        !parseHexId(parentHex, span.parent)) {
        error = "malformed trace/span/parent id";
        return false;
    }
    if (span.span == 0) {
        error = "span id must be nonzero";
        return false;
    }
    bool ok = true;
    std::uint64_t pid = 0;
    number("pid", pid, ok);
    number("start_us", span.startUs, ok);
    number("end_us", span.endUs, ok);
    if (!ok)
        return false;
    span.pid = static_cast<long long>(pid);

    for (const auto &pair : fields) {
        if (pair.first.compare(0, 2, "a_") != 0 ||
            pair.second.kind != JsonScalar::Kind::String) {
            error = "unexpected field '" + pair.first + "'";
            return false;
        }
        span.attrs.emplace_back(pair.first.substr(2),
                                pair.second.text);
    }
    return true;
}

/** Load every span from every shard; fatal on unreadable files. */
std::vector<TraceSpan>
loadSpans(const std::vector<std::string> &shards)
{
    std::vector<TraceSpan> spans;
    for (const std::string &path : shards) {
        std::ifstream in(path);
        if (!in.is_open())
            sbn_fatal("cannot open trace shard '", path, "'");
        std::string line;
        std::size_t lineNo = 0;
        while (std::getline(in, line)) {
            ++lineNo;
            if (line.empty())
                continue;
            TraceSpan span;
            std::string error;
            if (!parseSpanLine(line, span, error))
                sbn_fatal(path, ":", lineNo, ": bad span line: ",
                          error);
            span.file = path;
            span.line = lineNo;
            spans.push_back(std::move(span));
        }
    }
    return spans;
}

/**
 * Structural validation: intervals must close after they open, and a
 * child must not start before its parent (all spans of one run share
 * the host's monotonic clock). Prints the first violation and
 * returns false.
 */
bool
checkSpans(const std::vector<TraceSpan> &spans)
{
    std::map<std::uint64_t, const TraceSpan *> byId;
    for (const TraceSpan &span : spans) {
        if (span.endUs < span.startUs) {
            std::fprintf(stderr,
                         "sbn_trace: %s:%zu: span '%s' ends before "
                         "it starts (%llu < %llu)\n",
                         span.file.c_str(), span.line,
                         span.name.c_str(),
                         static_cast<unsigned long long>(span.endUs),
                         static_cast<unsigned long long>(
                             span.startUs));
            return false;
        }
        byId[span.span] = &span;
    }
    for (const TraceSpan &span : spans) {
        if (span.parent == 0)
            continue;
        const auto it = byId.find(span.parent);
        if (it == byId.end())
            continue; // parent's process died before emitting: fine
        const TraceSpan &parent = *it->second;
        if (span.trace == parent.trace &&
            span.startUs < parent.startUs) {
            std::fprintf(
                stderr,
                "sbn_trace: %s:%zu: span '%s' starts before its "
                "parent '%s' (%llu < %llu)\n",
                span.file.c_str(), span.line, span.name.c_str(),
                parent.name.c_str(),
                static_cast<unsigned long long>(span.startUs),
                static_cast<unsigned long long>(parent.startUs));
            return false;
        }
    }
    return true;
}

std::string
hex16(std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

/** Chrome trace-event JSON on stdout (Perfetto-loadable). */
void
emitChromeTrace(std::vector<TraceSpan> spans)
{
    std::uint64_t base = ~0ull;
    for (const TraceSpan &span : spans)
        base = std::min(base, span.startUs);
    if (spans.empty())
        base = 0;
    std::sort(spans.begin(), spans.end(),
              [](const TraceSpan &a, const TraceSpan &b) {
                  return a.startUs != b.startUs
                             ? a.startUs < b.startUs
                             : a.span < b.span;
              });

    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const TraceSpan &span : spans) {
        if (!first)
            out += ",\n";
        first = false;
        out += "{\"name\":\"" + jsonEscape(span.name) +
               "\",\"cat\":\"" + jsonEscape(span.kind) +
               "\",\"ph\":\"X\",\"ts\":" +
               std::to_string(span.startUs - base) +
               ",\"dur\":" +
               std::to_string(span.endUs - span.startUs) +
               ",\"pid\":" + std::to_string(span.pid) +
               ",\"tid\":" + std::to_string(span.pid) +
               ",\"args\":{\"trace\":\"" + hex16(span.trace) +
               "\",\"span\":\"" + hex16(span.span) +
               "\",\"parent\":\"" + hex16(span.parent) + "\"";
        for (const auto &attr : span.attrs)
            out += ",\"" + jsonEscape(attr.first) + "\":\"" +
                   jsonEscape(attr.second) + "\"";
        out += "}}";
    }
    out += "]}\n";
    std::fputs(out.c_str(), stdout);
}

std::string
seconds(std::uint64_t micros)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3fs",
                  static_cast<double>(micros) / 1e6);
    return buf;
}

/** Per-kind totals, slowest attempts, per-trace critical path. */
void
emitSummary(const std::vector<TraceSpan> &spans)
{
    std::set<long long> pids;
    std::set<std::uint64_t> traces;
    for (const TraceSpan &span : spans) {
        pids.insert(span.pid);
        traces.insert(span.trace);
    }
    std::printf("%zu span(s) from %zu process(es), %zu trace(s)\n",
                spans.size(), pids.size(), traces.size());

    struct KindStat
    {
        std::size_t count = 0;
        std::uint64_t totalUs = 0;
        std::uint64_t maxUs = 0;
    };
    std::map<std::string, KindStat> kinds;
    for (const TraceSpan &span : spans) {
        KindStat &stat = kinds[span.kind];
        ++stat.count;
        const std::uint64_t dur = span.endUs - span.startUs;
        stat.totalUs += dur;
        stat.maxUs = std::max(stat.maxUs, dur);
    }
    std::printf("by kind:\n");
    for (const auto &pair : kinds)
        std::printf("  %-15s %4zu span(s)  total %-10s max %s\n",
                    pair.first.c_str(), pair.second.count,
                    seconds(pair.second.totalUs).c_str(),
                    seconds(pair.second.maxUs).c_str());

    // Slowest shard attempts: where a fleet's wall clock went.
    std::vector<const TraceSpan *> attempts;
    for (const TraceSpan &span : spans)
        if (span.kind == "attempt")
            attempts.push_back(&span);
    std::sort(attempts.begin(), attempts.end(),
              [](const TraceSpan *a, const TraceSpan *b) {
                  return a->endUs - a->startUs > b->endUs - b->startUs;
              });
    if (!attempts.empty()) {
        std::printf("slowest attempts:\n");
        for (std::size_t i = 0;
             i < std::min<std::size_t>(5, attempts.size()); ++i) {
            const TraceSpan &span = *attempts[i];
            std::string outcome;
            for (const auto &attr : span.attrs)
                if (attr.first == "outcome")
                    outcome = attr.second;
            std::printf("  %-10s %s%s%s\n",
                        seconds(span.endUs - span.startUs).c_str(),
                        span.name.c_str(),
                        outcome.empty() ? "" : " - ",
                        outcome.c_str());
        }
    }

    // Critical path per trace: from the root span, repeatedly follow
    // the child whose interval ends latest - the chain that had to
    // finish for the trace to finish.
    std::map<std::uint64_t, std::vector<const TraceSpan *>> children;
    for (const TraceSpan &span : spans)
        if (span.parent != 0)
            children[span.parent].push_back(&span);
    for (const std::uint64_t trace : traces) {
        const TraceSpan *root = nullptr;
        std::set<std::uint64_t> ids;
        for (const TraceSpan &span : spans)
            if (span.trace == trace)
                ids.insert(span.span);
        for (const TraceSpan &span : spans) {
            if (span.trace != trace)
                continue;
            if (span.parent != 0 && ids.count(span.parent) != 0)
                continue; // has a present parent: not a root
            if (root == nullptr ||
                span.endUs - span.startUs >
                    root->endUs - root->startUs)
                root = &span;
        }
        if (root == nullptr)
            continue;
        std::printf("critical path (trace %s):\n",
                    hex16(trace).c_str());
        const TraceSpan *current = root;
        std::set<std::uint64_t> visited;
        while (current != nullptr &&
               visited.insert(current->span).second) {
            std::printf("  %s (%s)\n", current->name.c_str(),
                        seconds(current->endUs - current->startUs)
                            .c_str());
            const TraceSpan *next = nullptr;
            const auto it = children.find(current->span);
            if (it != children.end())
                for (const TraceSpan *child : it->second)
                    if (child->trace == trace &&
                        (next == nullptr ||
                         child->endUs > next->endUs))
                        next = child;
            current = next;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::map<std::string, std::string> known{
        {"dir", "trace shard directory (the traced run's "
                "SBN_TRACE_DIR)"},
        {"merge", "emit one Perfetto-loadable Chrome trace JSON "
                  "object on stdout"},
        {"summary", "per-kind totals, slowest attempts and critical "
                    "paths on stdout"},
        {"check", "validate span structure and cross-process "
                  "monotone nesting; nonzero exit on violation"},
    };
    const CommandLine cli(argc, argv, known);

    const std::string dir = cli.getString("dir", "");
    if (dir.empty())
        sbn_fatal("sbn_trace needs --dir=DIR (the traced run's "
                  "SBN_TRACE_DIR)");
    const bool merge = cli.getBool("merge", false);
    const bool summary = cli.getBool("summary", false);
    const bool check = cli.getBool("check", false);
    if (!merge && !summary && !check)
        sbn_fatal("pick at least one of --merge, --summary, --check");

    const std::vector<std::string> shards = findShards(dir);
    if (shards.empty())
        sbn_fatal("no trace-*.jsonl shards under '", dir,
                  "'; was the run traced (--trace / SBN_TRACE_DIR)?");
    const std::vector<TraceSpan> spans = loadSpans(shards);
    std::fprintf(stderr, "sbn_trace: %zu span(s) from %zu shard(s)\n",
                 spans.size(), shards.size());

    if (check && !checkSpans(spans))
        return 1;
    if (merge)
        emitChromeTrace(spans);
    if (summary)
        emitSummary(spans);
    return 0;
}
