#!/usr/bin/env python3
"""Kernel-bench trend check: fail CI on a cycles/s regression.

Compares the BENCH_kernel.json written by bench_perf against the
committed bench/baseline_kernel.json, per sample configuration, and
exits nonzero when the cycle-skipping kernel regressed by more than
the tolerance (default 20%, the ROADMAP's threshold).

CI runners and the machine that committed the baseline differ in raw
speed, so comparing absolute cycles/s across them would mostly
measure the hardware. --normalize divides each run's cycle-skip
cycles/s by the *same run's* classic-kernel cycles/s (the speedup):
both kernels simulate the identical trajectory in the same process on
the same machine, so their ratio cancels the machine out and isolates
the code's relative performance. Absolute cycles/s are still printed
and checked, but in --normalize mode an absolute-only regression just
warns.

Usage:
    check_bench_trend.py --baseline bench/baseline_kernel.json \
        --current BENCH_kernel.json [--tolerance 0.20] [--normalize]

Only sample names present in both files are compared (adding or
retiring a bench sample is not a regression); a current file with no
overlapping samples is an error, as is any sample whose two kernels
stopped producing identical metrics.
"""

import argparse
import json
import sys


def load_samples(path):
    with open(path) as handle:
        doc = json.load(handle)
    samples = doc.get("configs")
    if not isinstance(samples, list) or not samples:
        sys.exit(f"error: {path} carries no kernel-bench configs")
    return {sample["name"]: sample for sample in samples}


def cycles_per_s(sample, kernel):
    """cycles/s of one kernel's run, or None if the sample does not
    carry that kernel (e.g. after KernelKind::Classic is retired)."""
    data = sample.get(kernel)
    if not isinstance(data, dict) or "cycles_per_s" not in data:
        return None
    return float(data["cycles_per_s"])


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="fractional regression that fails "
                             "(default 0.20)")
    parser.add_argument("--normalize", action="store_true",
                        help="judge the classic-normalized speedup "
                             "(machine-independent); absolute "
                             "cycles/s regressions then only warn")
    args = parser.parse_args()

    baseline = load_samples(args.baseline)
    current = load_samples(args.current)
    shared = sorted(set(baseline) & set(current))
    if not shared:
        sys.exit("error: no sample names shared between "
                 f"{args.baseline} and {args.current}")

    failures = []
    warnings = []
    print(f"kernel-bench trend vs {args.baseline} "
          f"(tolerance {args.tolerance:.0%}"
          f"{', normalized by classic' if args.normalize else ''}):")
    for name in shared:
        base, cur = baseline[name], current[name]

        # The identical-metrics gate only means something while the
        # bench still runs both kernels; after Classic's retirement
        # the field is gone along with the comparison.
        both_kernels = (cycles_per_s(cur, "classic") is not None
                        and cycles_per_s(cur, "cycleskip") is not None)
        if both_kernels and cur.get("identical_metrics") is not True:
            failures.append(
                f"{name}: kernels no longer produce identical "
                "metrics - correctness, not performance")
            continue

        abs_base = cycles_per_s(base, "cycleskip")
        abs_cur = cycles_per_s(cur, "cycleskip")
        if abs_base is None or abs_cur is None:
            failures.append(
                f"{name}: no cycleskip cycles_per_s in one of the "
                "files - the bench output format changed")
            continue
        abs_change = abs_cur / abs_base - 1.0

        # The classic kernel is the on-machine yardstick; once it is
        # retired from the bench output the normalized comparison is
        # simply unavailable.
        classic_base = cycles_per_s(base, "classic")
        classic_cur = cycles_per_s(cur, "classic")
        norm_change = None
        speedups = ""
        if classic_base is not None and classic_cur is not None:
            norm_base = abs_base / classic_base
            norm_cur = abs_cur / classic_cur
            norm_change = norm_cur / norm_base - 1.0
            speedups = (f"   speedup {norm_base:5.2f}x -> "
                        f"{norm_cur:5.2f}x ({norm_change:+7.1%})")
        elif args.normalize:
            warnings.append(
                f"{name}: no classic-kernel data to normalize by "
                "(retired?) - judging absolute cycles/s; refresh the "
                "baseline on comparable hardware or drop --normalize")

        judge_normalized = args.normalize and norm_change is not None
        judged_change = norm_change if judge_normalized else abs_change
        verdict = "ok"
        if judged_change < -args.tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: "
                f"{'speedup' if judge_normalized else 'cycles/s'}"
                f" regressed {-judged_change:.1%}"
                f" (beyond {args.tolerance:.0%})")
        elif judge_normalized and abs_change < -args.tolerance:
            verdict = "abs-warn"
            warnings.append(
                f"{name}: absolute cycles/s down {-abs_change:.1%} "
                "but speedup held - likely a slower runner")

        print(f"  {name:24s} cycles/s {abs_base:12.0f} -> "
              f"{abs_cur:12.0f} ({abs_change:+7.1%}){speedups}"
              f"   {verdict}")

    for message in warnings:
        print(f"warning: {message}")
    if failures:
        for message in failures:
            print(f"FAIL: {message}")
        return 1
    print(f"trend check passed over {len(shared)} sample(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
