#!/usr/bin/env python3
"""Kernel-bench trend check: fail CI on a cycles/s regression.

Compares the BENCH_kernel.json written by bench_perf against the
committed bench/baseline_kernel.json, per sample configuration, and
exits nonzero when the cycle-skipping kernel regressed by more than
the tolerance (default 20%, the ROADMAP's threshold).

CI runners and the machine that committed the baseline differ in raw
speed, so comparing absolute cycles/s across them would mostly
measure the hardware. Two normalization modes cancel the machine out:

--normalize divides each run's cycle-skip cycles/s by the *same
run's* classic-kernel cycles/s (the speedup). This only works while
the bench still measures the Classic kernel; it is retired, so the
mode survives for historical baselines only.

--normalize-by NAME divides every sample's cycles/s by the named
reference sample's cycles/s in the same file: all samples run in the
same process on the same machine, so the ratio isolates per-regime
code changes - but a regression in the reference sample itself can
then only warn. --normalize-by median avoids designating a
blind-spot sample: each sample's current/baseline ratio is judged
against the median ratio across all shared samples, so a regression
confined to any one regime (the former reference included) fails
while a uniformly slower runner cancels out. A change slowing every
sample equally is invisible to either ratio (that needs an absolute
anchor no longer available without the Classic kernel), which is why
absolute cycles/s are still printed and checked - in any normalized
mode an absolute-only regression just warns.

Usage:
    check_bench_trend.py --baseline bench/baseline_kernel.json \
        --current BENCH_kernel.json [--tolerance 0.20] \
        [--normalize | --normalize-by median | --normalize-by NAME] \
        [--json SUMMARY]

--json SUMMARY additionally writes a machine-readable summary of the
run to SUMMARY ('-' = stdout), so CI can annotate results without
scraping the human output. The exit code is unchanged by --json.

The summary schema is "sbn.bench_trend.v1" (one JSON object):

    type       "sbn.bench_trend.v1" - consumers must check this tag
               and reject unknown type values; schema changes bump it
    baseline   path of the --baseline file as given
    current    path of the --current file as given
    tolerance  the judged fractional tolerance
    normalized "classic", the --normalize-by value, or null
    rows       one object per judged (name, kernel) pair: name,
               kernel ("cycleskip"/"faststat"),
               baseline_cycles_per_s, current_cycles_per_s,
               abs_change, normalized_change or speedup_change,
               judged ("absolute"/"normalized"/"speedup"),
               verdict ("ok"/"abs-warn"/"REGRESSION"/"error"),
               pass (bool); "error" rows carry a reason instead of
               the numeric fields
    failures   flat list of human-readable failure messages
    warnings   flat list of human-readable warning messages
    pass       overall verdict (true iff failures is empty)

Samples that carry a "faststat" object in both files are additionally
judged on the FastStat kernel. The yardstick there needs no flag:
bench_perf runs both kernels interleaved in one process, so the
same-run speedup (faststat / cycleskip cycles/s) cancels the machine
exactly, and a speedup regression beyond the tolerance fails while an
absolute-only faststat slowdown warns. Cycleskip-only baselines keep
working unchanged.

Only sample names present in both files are judged on performance,
and every row present in only one file gets its own clear message: a
baselined sample missing from the current run fails (its coverage
silently vanished), a new unbaselined sample warns. Malformed rows
(no "name", duplicate names) are reported by file and row index, not
as a traceback. A current file with no overlapping samples is an
error, as is any sample whose two kernels stopped producing identical
metrics.
"""

import argparse
import json
import sys


def load_samples(path, role):
    # A missing or unreadable file is an expected operational failure
    # (a fresh checkout without the committed baseline, a bench run
    # that never wrote its output), so it must exit with one clear
    # message naming the file and its role, never a traceback.
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except FileNotFoundError:
        hint = ("commit or restore the baseline (it is a checked-in "
                "artifact)" if role == "baseline" else
                "run bench_perf with SBN_BENCH_KERNEL_JSON set to "
                "produce it")
        sys.exit(f"error: {role} file {path} does not exist - {hint}")
    except OSError as err:
        sys.exit(f"error: cannot read {role} file {path}: "
                 f"{err.strerror}")
    except json.JSONDecodeError as err:
        sys.exit(f"error: {role} file {path} is not valid JSON "
                 f"(line {err.lineno}: {err.msg})")
    if not isinstance(doc, dict):
        sys.exit(f"error: {role} file {path} is not a JSON object - "
                 "the bench output format changed")
    samples = doc.get("configs")
    if not isinstance(samples, list) or not samples:
        sys.exit(f"error: {path} carries no kernel-bench configs")
    by_name = {}
    for index, sample in enumerate(samples):
        # Validate per row so a malformed bench file names the row
        # instead of dying with a KeyError traceback.
        if not isinstance(sample, dict):
            sys.exit(f"error: {path} configs[{index}] is not an "
                     "object - the bench output format changed")
        name = sample.get("name")
        if not isinstance(name, str) or not name:
            sys.exit(f"error: {path} configs[{index}] has no "
                     "\"name\" string - the bench output format "
                     "changed")
        if name in by_name:
            sys.exit(f"error: {path} configs[{index}] duplicates "
                     f"sample name '{name}'")
        by_name[name] = sample
    return by_name


def cycles_per_s(sample, kernel):
    """cycles/s of one kernel's run, or None if the sample does not
    carry that kernel (e.g. after KernelKind::Classic is retired)."""
    data = sample.get(kernel)
    if not isinstance(data, dict) or "cycles_per_s" not in data:
        return None
    return float(data["cycles_per_s"])


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="fractional regression that fails "
                             "(default 0.20)")
    parser.add_argument("--normalize", action="store_true",
                        help="judge the classic-normalized speedup "
                             "(machine-independent); absolute "
                             "cycles/s regressions then only warn")
    parser.add_argument("--normalize-by", metavar="SAMPLE",
                        help="judge cycles/s normalized by this "
                             "reference sample of the same run, or "
                             "'median' to judge each sample's "
                             "current/baseline ratio against the "
                             "median ratio over all samples "
                             "(machine-independent); absolute "
                             "regressions then only warn")
    parser.add_argument("--json", metavar="SUMMARY",
                        help="write a machine-readable per-row "
                             "pass/fail summary to this file "
                             "('-' = stdout)")
    args = parser.parse_args()
    if args.normalize and args.normalize_by:
        sys.exit("error: --normalize and --normalize-by are "
                 "mutually exclusive")

    baseline = load_samples(args.baseline, "baseline")
    current = load_samples(args.current, "current")
    shared = sorted(set(baseline) & set(current))
    if not shared:
        sys.exit("error: no sample names shared between "
                 f"{args.baseline} and {args.current}")
    # Rows present in only one file get a clear per-row message
    # rather than being silently dropped from the comparison: a
    # baselined sample the bench stopped emitting is a failure (the
    # coverage it provided is gone until the baseline is refreshed);
    # a new sample the baseline has not caught up with only warns.
    missing_failures = []
    for name in sorted(set(baseline) - set(current)):
        missing_failures.append(
            f"{name}: in baseline {args.baseline} but missing from "
            f"{args.current} - the bench no longer emits this "
            "sample; refresh the baseline if it was retired on "
            "purpose")
    new_row_warnings = []
    for name in sorted(set(current) - set(baseline)):
        new_row_warnings.append(
            f"{name}: in {args.current} but not baselined in "
            f"{args.baseline} - not judged; refresh the baseline to "
            "cover it")

    ref_base = ref_cur = None
    if args.normalize_by == "median":
        # Each sample is judged relative to its own file's median
        # cycles/s, so "speedup" prints as an O(1) regime ratio and a
        # regression confined to any one regime (a designated
        # reference sample included) moves that sample against the
        # median and fails.
        def file_median(samples):
            values = sorted(
                v for v in (cycles_per_s(samples[name], "cycleskip")
                            for name in shared)
                if v is not None)
            if not values:
                sys.exit("error: no cycleskip cycles/s to take a "
                         "median over")
            mid = len(values) // 2
            return (values[mid] if len(values) % 2 == 1
                    else (values[mid - 1] + values[mid]) / 2.0)
        ref_base = file_median(baseline)
        ref_cur = file_median(current)
    elif args.normalize_by:
        ref_base = (cycles_per_s(baseline[args.normalize_by], "cycleskip")
                    if args.normalize_by in baseline else None)
        ref_cur = (cycles_per_s(current[args.normalize_by], "cycleskip")
                   if args.normalize_by in current else None)
        if ref_base is None or ref_cur is None:
            sys.exit(f"error: reference sample '{args.normalize_by}' "
                     "with cycleskip cycles/s not present in both "
                     "files")

    failures = missing_failures
    warnings = new_row_warnings
    rows = []  # --json: one entry per judged (name, kernel) pair
    normalized_note = ""
    if args.normalize:
        normalized_note = ", normalized by classic"
    elif args.normalize_by:
        normalized_note = f", normalized by {args.normalize_by}"
    print(f"kernel-bench trend vs {args.baseline} "
          f"(tolerance {args.tolerance:.0%}{normalized_note}):")
    for name in shared:
        base, cur = baseline[name], current[name]

        # The identical-metrics gate only means something while the
        # bench still runs both kernels; after Classic's retirement
        # the field is gone along with the comparison.
        both_kernels = (cycles_per_s(cur, "classic") is not None
                        and cycles_per_s(cur, "cycleskip") is not None)
        if both_kernels and cur.get("identical_metrics") is not True:
            failures.append(
                f"{name}: kernels no longer produce identical "
                "metrics - correctness, not performance")
            rows.append({"name": name, "kernel": "cycleskip",
                         "verdict": "error",
                         "reason": "kernels no longer produce "
                                   "identical metrics"})
            continue

        abs_base = cycles_per_s(base, "cycleskip")
        abs_cur = cycles_per_s(cur, "cycleskip")
        if abs_base is None or abs_cur is None:
            failures.append(
                f"{name}: no cycleskip cycles_per_s in one of the "
                "files - the bench output format changed")
            rows.append({"name": name, "kernel": "cycleskip",
                         "verdict": "error",
                         "reason": "no cycleskip cycles_per_s"})
            continue
        abs_change = abs_cur / abs_base - 1.0

        # The classic kernel is the on-machine yardstick; once it is
        # retired from the bench output the normalized comparison is
        # simply unavailable.
        classic_base = cycles_per_s(base, "classic")
        classic_cur = cycles_per_s(cur, "classic")
        if args.normalize_by:
            classic_base, classic_cur = ref_base, ref_cur
        norm_change = None
        speedups = ""
        if classic_base is not None and classic_cur is not None:
            norm_base = abs_base / classic_base
            norm_cur = abs_cur / classic_cur
            norm_change = norm_cur / norm_base - 1.0
            speedups = (f"   speedup {norm_base:5.2f}x -> "
                        f"{norm_cur:5.2f}x ({norm_change:+7.1%})")
        elif args.normalize:
            warnings.append(
                f"{name}: no classic-kernel data to normalize by "
                "(retired?) - judging absolute cycles/s; refresh the "
                "baseline on comparable hardware or drop --normalize")

        judge_normalized = ((args.normalize or args.normalize_by)
                            and norm_change is not None)
        judged_change = norm_change if judge_normalized else abs_change
        verdict = "ok"
        if judged_change < -args.tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: "
                f"{'speedup' if judge_normalized else 'cycles/s'}"
                f" regressed {-judged_change:.1%}"
                f" (beyond {args.tolerance:.0%})")
        elif judge_normalized and abs_change < -args.tolerance:
            verdict = "abs-warn"
            warnings.append(
                f"{name}: absolute cycles/s down {-abs_change:.1%} "
                "but speedup held - likely a slower runner")

        print(f"  {name:24s} cycles/s {abs_base:12.0f} -> "
              f"{abs_cur:12.0f} ({abs_change:+7.1%}){speedups}"
              f"   {verdict}")
        rows.append({"name": name, "kernel": "cycleskip",
                     "baseline_cycles_per_s": abs_base,
                     "current_cycles_per_s": abs_cur,
                     "abs_change": abs_change,
                     "normalized_change": norm_change,
                     "judged": ("normalized" if judge_normalized
                                else "absolute"),
                     "verdict": verdict,
                     "pass": verdict != "REGRESSION"})

    # FastStat rows, judged only where both files carry them. The
    # same-run cycleskip kernel is the yardstick: bench_perf measures
    # both kernels interleaved in one process, so the speedup ratio
    # cancels the machine without needing any --normalize flag.
    fs_shared = [
        name for name in shared
        if cycles_per_s(baseline[name], "faststat") is not None
        and cycles_per_s(current[name], "faststat") is not None
    ]
    if fs_shared:
        print("faststat trend (judged on the same-run speedup "
              "over cycleskip):")
    for name in fs_shared:
        fs_base = cycles_per_s(baseline[name], "faststat")
        fs_cur = cycles_per_s(current[name], "faststat")
        cs_base = cycles_per_s(baseline[name], "cycleskip")
        cs_cur = cycles_per_s(current[name], "cycleskip")
        if cs_base is None or cs_cur is None:
            failures.append(
                f"{name}: faststat present without cycleskip - the "
                "bench output format changed")
            rows.append({"name": name, "kernel": "faststat",
                         "verdict": "error",
                         "reason": "faststat present without "
                                   "cycleskip"})
            continue
        abs_change = fs_cur / fs_base - 1.0
        speedup_base = fs_base / cs_base
        speedup_cur = fs_cur / cs_cur
        speedup_change = speedup_cur / speedup_base - 1.0

        verdict = "ok"
        if speedup_change < -args.tolerance:
            verdict = "REGRESSION"
            failures.append(
                f"{name}: faststat speedup regressed "
                f"{-speedup_change:.1%} (beyond {args.tolerance:.0%})")
        elif abs_change < -args.tolerance:
            verdict = "abs-warn"
            warnings.append(
                f"{name}: absolute faststat cycles/s down "
                f"{-abs_change:.1%} but its speedup held - likely a "
                "slower runner")

        print(f"  {name:24s} cycles/s {fs_base:12.0f} -> "
              f"{fs_cur:12.0f} ({abs_change:+7.1%})"
              f"   speedup {speedup_base:5.2f}x -> "
              f"{speedup_cur:5.2f}x ({speedup_change:+7.1%})"
              f"   {verdict}")
        rows.append({"name": name, "kernel": "faststat",
                     "baseline_cycles_per_s": fs_base,
                     "current_cycles_per_s": fs_cur,
                     "abs_change": abs_change,
                     "speedup_change": speedup_change,
                     "judged": "speedup",
                     "verdict": verdict,
                     "pass": verdict != "REGRESSION"})

    for message in warnings:
        print(f"warning: {message}")
    if failures:
        for message in failures:
            print(f"FAIL: {message}")

    if args.json:
        summary = {
            "type": "sbn.bench_trend.v1",
            "baseline": args.baseline,
            "current": args.current,
            "tolerance": args.tolerance,
            "normalized": (
                "classic" if args.normalize
                else args.normalize_by if args.normalize_by
                else None),
            "rows": rows,
            "failures": failures,
            "warnings": warnings,
            "pass": not failures,
        }
        text = json.dumps(summary, indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(text)
        else:
            with open(args.json, "w") as handle:
                handle.write(text)

    if failures:
        return 1
    print(f"trend check passed over {len(shared)} sample(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
