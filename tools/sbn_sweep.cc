/**
 * @file
 * Sharded-sweep orchestrator: run, shard, spawn, merge, resume - and
 * client of the sbn_sweepd job daemon.
 *
 * One binary drives every stage of a distributed EBW sweep over the
 * paper's parameter grid:
 *
 *   sbn_sweep --n=8 --m=16 --r=4,8 --p=0.1,0.5,1.0
 *       Serial run: evaluate the whole grid in-process and write the
 *       ordered record stream (JSONL, one line per point) to stdout.
 *
 *   sbn_sweep ... --shard=1/4 --dir=out/
 *       Run only shard 1 of 4, appending records to
 *       out/shard-1-of-4.jsonl. Add --resume to skip points whose
 *       records already exist and fingerprint-match (e.g. after a
 *       kill). Any machine can run any shard; the plan is a pure
 *       function of the grid.
 *
 *   sbn_sweep ... --merge --shards=4 --dir=out/
 *       Validate and reassemble the shard files into the flat-grid
 *       ordered stream on stdout - byte-identical to the serial run.
 *       A directory with no record files at all exits with the
 *       distinct no-input code (66) and one structured stderr line.
 *
 *   sbn_sweep ... --spawn=4 --dir=out/
 *       Run the 4-shard fleet under ShardSupervisor: one worker per
 *       shard with crash/hang detection, capped-backoff retries with
 *       resume (--retries, --hang-timeout), and work stealing of a
 *       straggler's missing points into free slots (--steal). On
 *       success the merged stream on stdout is byte-identical to the
 *       serial run. When a shard exhausts its retry budget the tool
 *       degrades gracefully: merged partial output on stdout, a
 *       machine-readable missing-points manifest in --dir, one
 *       structured failure line on stderr, and exit code 75
 *       (EX_TEMPFAIL) so callers can tell "rerun the named points"
 *       from "the sweep is broken".
 *
 *   sbn_sweep --connect=STATE_DIR_OR_PORT --submit="--n=8 ... --spawn=2"
 *   sbn_sweep --connect=... --status [--job=N]
 *   sbn_sweep --connect=... --results --job=N [--wait]
 *   sbn_sweep --connect=... --cancel --job=N
 *   sbn_sweep --connect=... --drain
 *       Talk to a running sbn_sweepd (docs/service.md). --submit
 *       with --wait blocks until the job is terminal and streams the
 *       merged records to stdout, exiting with the job's own exit
 *       disposition (0 complete, 75 partial). A daemon that cannot
 *       be reached exits 69 (EX_UNAVAILABLE).
 *
 * --adaptive switches every mode to adaptive-precision estimation
 * (per-point replications grown until --rel/--abs or --cap); records
 * then carry replication counts, rounds and the CI half-width, and
 * the fingerprints bind them to the precision setup so mixed-mode
 * merges are rejected.
 */

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "exec/parallel_runner.hh"
#include "service/client.hh"
#include "service/journal.hh"
#include "service/sweeprun.hh"
#include "shard/fault.hh"
#include "shard/merge.hh"
#include "shard/plan.hh"
#include "shard/result_io.hh"
#include "shard/runner.hh"
#include "shard/supervisor.hh"
#include "telemetry/telemetry.hh"
#include "util/cli.hh"
#include "util/exit_codes.hh"
#include "util/logging.hh"

namespace {

using namespace sbn;

/** Everything parsed from the command line. */
struct Options
{
    SweepRunOptions run;
    std::string dir = "sbn-sweep-out";
    bool resume = false;
};

Options
parseOptions(const CommandLine &cli)
{
    Options opt;
    opt.run = parseSweepRunOptions(cli);
    opt.dir = cli.getString("dir", opt.dir);
    opt.resume = cli.getBool("resume", false);
    return opt;
}

std::string g_telemetryDumpPath = "-";

/**
 * atexit hook: dump one flat-JSON telemetry line whatever the exit
 * path - success, the partial exit 75 in spawnAndMerge, or a merge
 * fatal. Forked shard workers leave via _exit and never run it, so
 * the dump always describes this orchestrating process. The entered
 * guard keeps a dump failure (sbn_fatal -> exit during exit) from
 * recursing.
 */
void
dumpTelemetryAtExit()
{
    static bool entered = false;
    if (entered)
        return;
    entered = true;
    writeTelemetryDump(g_telemetryDumpPath, /*include_timers=*/true);
}

/**
 * Merge shard record files and stream the records to stdout. The
 * files are either the canonical dir/shard-i-of-N.jsonl set
 * (@p shard_count != 0) or an explicit @p files list (e.g. the
 * per-sweep files the bench binaries write in --shard mode). With
 * @p structural_size != 0 the merge validates structure only (for
 * record files whose grid flags are not at hand); otherwise the
 * records must fingerprint-match the spec's grid.
 */
void
mergeShards(const Options &opt, std::size_t shard_count,
            const std::vector<std::string> &files,
            std::size_t structural_size)
{
    MergeCheck check =
        structural_size != 0
            ? structuralMergeCheck(structural_size)
            : sweepRunMergeCheck(opt.run, opt.run.spec.materialize());
    if (files.empty()) {
        // Canonical shard set: give the check shard attribution so a
        // strict-merge failure names the exact missing indices and
        // the shard file expected to own each of them.
        check.shardCount = shard_count;
        check.layout = opt.run.layout;
        check.dir = opt.dir;
    }
    const std::vector<std::string> paths =
        files.empty() ? shardFilePaths(opt.dir, shard_count) : files;

    // Zero record files is its own failure mode - a wrong --dir or a
    // sweep that never ran - and deserves a distinct diagnosis and
    // exit code, not the per-file "cannot open" fatal (which is for
    // a *partially* missing set, where naming the one absent shard
    // is the useful message).
    std::size_t present = 0;
    for (const std::string &path : paths) {
        struct stat info;
        if (::stat(path.c_str(), &info) == 0)
            ++present;
    }
    if (present == 0) {
        std::fprintf(stderr,
                     "sbn_sweep: --merge: no record files: none of "
                     "the %zu expected file(s) exist under '%s' "
                     "(first: %s); wrong --dir, or the sweep never "
                     "ran\n",
                     paths.size(), opt.dir.c_str(),
                     paths.empty() ? "-" : paths.front().c_str());
        std::exit(kExitNoInput);
    }

    const std::vector<PointRecord> merged =
        mergeRecordFiles(paths, check);
    writeRecords(std::cout, merged);
    std::fprintf(stderr, "merged %zu record(s) from %zu file(s)\n",
                 merged.size(), paths.size());
}

/** Serial reference run: full grid in-process, records to stdout. */
void
runSerial(const Options &opt)
{
    const std::vector<SystemConfig> points =
        opt.run.spec.materialize();
    ParallelRunner &runner = sharedParallelRunner(
        opt.run.threads != 0 ? opt.run.threads : defaultExecThreads());

    if (opt.run.adaptive) {
        const AdaptiveReplicator replicator(runner, opt.run.target,
                                            opt.run.schedule);
        replicator.runPoints(
            points, evaluateSweepReplication,
            [&](std::size_t i, const SystemConfig &cfg,
                const AdaptiveEstimate &estimate) {
                std::cout << formatRecord(makeAdaptiveRecord(
                                 i, cfg, estimate, opt.run.target,
                                 opt.run.schedule))
                          << '\n';
            });
    } else {
        runner.stream<PointSample>(
            points.size(),
            [&](std::size_t i) {
                return evaluateSweepPointSample(points[i]);
            },
            [&](std::size_t i, const PointSample &sample) {
                std::cout << formatRecord(
                                 makeSweepRecord(i, points[i], sample))
                          << '\n';
            });
    }
    std::fprintf(stderr, "swept %zu point(s)\n", points.size());
}

/**
 * Run the shard fleet under ShardSupervisor, then merge to stdout.
 * Complete runs exit 0 with the byte-identical merged stream;
 * budget-exhausted runs emit the merged partial stream, persist the
 * missing-points manifest, report every failed shard in one
 * structured stderr line, and exit kPartialResultExit.
 */
void
spawnAndMerge(const Options &opt, std::size_t shard_count)
{
    const SupervisedSweepOutcome outcome = runSupervisedSweep(
        opt.run, shard_count, opt.dir, opt.resume);
    const SupervisorReport &report = outcome.report;

    if (report.interruptSignal != 0) {
        // The supervisor already SIGKILLed and reaped every live
        // worker; nothing is left to clean up here. Skip the merge -
        // an interrupted fleet's output is not a result, partial or
        // otherwise - and die with the conventional signal exit code
        // so shells and CI see the interruption as such.
        std::fprintf(stderr,
                     "--spawn: interrupted by signal %d; workers "
                     "killed and reaped, no merge attempted (shard "
                     "files in %s support --resume)\n",
                     report.interruptSignal, opt.dir.c_str());
        std::exit(exitCodeForSignal(report.interruptSignal));
    }

    if (report.respawns != 0 || report.stealLaunches != 0)
        std::fprintf(stderr,
                     "--spawn: supervision recovered: %zu respawn(s), "
                     "%zu steal launch(es) covering %zu point(s)\n",
                     report.respawns, report.stealLaunches,
                     report.stolenPoints);

    writeRecords(std::cout, outcome.merged.records);

    if (!report.complete) {
        // Graceful degradation: persist the exact uncovered points
        // machine-readably and report every failed shard - index,
        // wait status, launches - in ONE structured stderr line.
        const std::string manifest = missingManifestPath(opt.dir);
        writeMissingPointsManifest(manifest, outcome.check,
                                   report.missingPoints);
        std::string line = "--spawn: incomplete:";
        for (std::size_t i = 0; i < report.shards.size(); ++i) {
            const ShardOutcome &shard = report.shards[i];
            if (shard.state != ShardState::Exhausted)
                continue;
            line += " shard " + std::to_string(i) + "/" +
                    std::to_string(shard_count) + " {" +
                    describeWaitStatus(shard.lastStatus) + ", " +
                    std::to_string(shard.launches) + " launch(es)" +
                    (shard.everHung ? ", hung" : "") + "}";
        }
        line += "; " + std::to_string(report.missingPoints.size()) +
                "/" + std::to_string(outcome.check.gridSize) +
                " point(s) missing; merged partial stream written; "
                "manifest: " +
                manifest;
        std::fprintf(stderr, "%s\n", line.c_str());
        std::exit(kPartialResultExit);
    }

    std::fprintf(stderr, "merged %zu record(s) from %zu file(s)\n",
                 outcome.merged.records.size(),
                 report.recordFiles.size());
}

// ---------------------------------------------------------------------
// Daemon client mode (--connect).
// ---------------------------------------------------------------------

/** One request/response over a fresh connection. */
ClientResponse
callDaemon(const std::string &endpoint, const Request &request)
{
    DaemonClient client(endpoint);
    return client.call(request);
}

/** Re-serialize a parsed flat object (key order = map order). */
std::string
formatFlatObject(const JsonObject &fields)
{
    std::string out = "{";
    bool first = true;
    for (const auto &pair : fields) {
        if (!first)
            out += ',';
        first = false;
        out += '"' + pair.first + "\":";
        switch (pair.second.kind) {
        case JsonScalar::Kind::String:
            out += '"' + jsonEscape(pair.second.text) + '"';
            break;
        case JsonScalar::Kind::Number:
            out += pair.second.text;
            break;
        case JsonScalar::Kind::Bool:
            out += pair.second.boolean ? "true" : "false";
            break;
        case JsonScalar::Kind::Null:
            out += "null";
            break;
        }
    }
    out += '}';
    return out;
}

/** Print a protocol-level failure and exit nonzero. */
[[noreturn]] void
dieOnErrorResponse(const char *what, const ClientResponse &response)
{
    std::fprintf(stderr, "sbn_sweep: %s failed: %s: %s\n", what,
                 response.errorCode().c_str(),
                 response.text("message").c_str());
    std::exit(kExitFatal);
}

/** Poll the daemon until @p job reaches a terminal state. */
ClientResponse
waitForTerminal(const std::string &endpoint, std::uint64_t job)
{
    Request status;
    status.kind = RequestKind::Status;
    status.hasJob = true;
    status.job = job;
    for (;;) {
        const ClientResponse response = callDaemon(endpoint, status);
        if (!response.ok())
            dieOnErrorResponse("status", response);
        JobState state = JobState::Submitted;
        if (parseJobState(response.text("state"), state) &&
            jobStateTerminal(state))
            return response;
        timespec delay{0, 200 * 1000 * 1000};
        ::nanosleep(&delay, nullptr);
    }
}

/**
 * Fetch a finished job's merged records to stdout and exit with the
 * job's own disposition (0 complete, kPartialResultExit partial).
 */
[[noreturn]] void
fetchResultsAndExit(const std::string &endpoint, std::uint64_t job)
{
    Request request;
    request.kind = RequestKind::Results;
    request.hasJob = true;
    request.job = job;
    const ClientResponse response = callDaemon(endpoint, request);
    if (!response.ok())
        dieOnErrorResponse("results", response);
    std::fwrite(response.payload.data(), 1, response.payload.size(),
                stdout);
    const int exit = static_cast<int>(response.number("exit", 0));
    if (exit == kPartialResultExit)
        std::fprintf(stderr,
                     "sbn_sweep: job %llu finished partial; see the "
                     "job's missing-points manifest in the daemon "
                     "state dir\n",
                     static_cast<unsigned long long>(job));
    std::exit(exit == kPartialResultExit ? kPartialResultExit
                                         : kExitOk);
}

[[noreturn]] void
runClientMode(const CommandLine &cli, const std::string &endpoint)
{
    const bool wait = cli.getBool("wait", false);

    if (cli.has("submit")) {
        Request request;
        request.kind = RequestKind::Submit;
        request.spec = cli.getString("submit", "");
        request.timeoutSeconds = cli.getDouble("job-timeout", 0.0);
        if (request.timeoutSeconds < 0)
            sbn_fatal("--job-timeout must be >= 0 seconds");
        const ClientResponse response = callDaemon(endpoint, request);
        if (!response.ok())
            dieOnErrorResponse("submit", response);
        const std::uint64_t job =
            static_cast<std::uint64_t>(response.number("job", 0));
        std::fprintf(stderr, "sbn_sweep: submitted job %llu\n",
                     static_cast<unsigned long long>(job));
        if (!wait) {
            std::printf("%llu\n",
                        static_cast<unsigned long long>(job));
            std::exit(kExitOk);
        }
        const ClientResponse last = waitForTerminal(endpoint, job);
        JobState state = JobState::Submitted;
        parseJobState(last.text("state"), state);
        if (state != JobState::Done) {
            std::fprintf(stderr,
                         "sbn_sweep: job %llu ended %s (%s)\n",
                         static_cast<unsigned long long>(job),
                         jobStateName(state),
                         last.text("reason").c_str());
            std::exit(kExitFatal);
        }
        fetchResultsAndExit(endpoint, job);
    }

    if (cli.getBool("results", false)) {
        const std::int64_t job = cli.getInt("job", -1);
        if (job < 0)
            sbn_fatal("--results needs --job=N");
        if (wait)
            waitForTerminal(endpoint,
                            static_cast<std::uint64_t>(job));
        fetchResultsAndExit(endpoint,
                            static_cast<std::uint64_t>(job));
    }

    if (cli.getBool("cancel", false)) {
        const std::int64_t job = cli.getInt("job", -1);
        if (job < 0)
            sbn_fatal("--cancel needs --job=N");
        Request request;
        request.kind = RequestKind::Cancel;
        request.hasJob = true;
        request.job = static_cast<std::uint64_t>(job);
        const ClientResponse response = callDaemon(endpoint, request);
        if (!response.ok())
            dieOnErrorResponse("cancel", response);
        std::fprintf(stderr, "sbn_sweep: job %lld cancelled\n",
                     static_cast<long long>(job));
        std::exit(kExitOk);
    }

    if (cli.getBool("drain", false)) {
        Request request;
        request.kind = RequestKind::Drain;
        const ClientResponse response = callDaemon(endpoint, request);
        if (!response.ok())
            dieOnErrorResponse("drain", response);
        std::fprintf(stderr, "sbn_sweep: daemon draining\n");
        std::exit(kExitOk);
    }

    if (cli.getBool("metrics", false)) {
        Request request;
        request.kind = RequestKind::Metrics;
        if (cli.has("job")) {
            request.hasJob = true;
            request.job =
                static_cast<std::uint64_t>(cli.getInt("job", 0));
        }
        const ClientResponse response = callDaemon(endpoint, request);
        if (!response.ok())
            dieOnErrorResponse("metrics", response);
        // One flat-JSON line, same shape as --status: machine
        // consumers parse it, humans can read it.
        std::printf("%s\n", formatFlatObject(response.fields).c_str());
        std::exit(kExitOk);
    }

    // Default: status (daemon summary, or one job with --job=N).
    Request request;
    request.kind = RequestKind::Status;
    if (cli.has("job")) {
        request.hasJob = true;
        request.job =
            static_cast<std::uint64_t>(cli.getInt("job", 0));
    }
    const ClientResponse response = callDaemon(endpoint, request);
    if (!response.ok())
        dieOnErrorResponse("status", response);
    // The status line is already machine-readable; pass it through.
    std::printf("%s\n", formatFlatObject(response.fields).c_str());
    std::exit(kExitOk);
}

} // namespace

int
main(int argc, char **argv)
{
    std::map<std::string, std::string> known = sweepFlagHelp();
    known.insert({
        {"shard", "run one shard: i/N (0-based)"},
        {"shards", "shard count for --merge"},
        {"files", "merge: explicit record files instead of the "
                  "canonical shard-i-of-N.jsonl set"},
        {"size", "merge: validate structure only, for a grid of this "
                 "many points (skips fingerprint checks)"},
        {"dir", "shard file directory"},
        {"resume", "skip points with matching records on disk"},
        {"merge", "merge shard files to stdout"},
        {"connect", "client mode: daemon state dir, PORT or "
                    "host:PORT (see docs/service.md)"},
        {"submit", "client: submit a job; value = sbn_sweep-style "
                   "spec string"},
        {"job-timeout", "client: wall-clock budget in seconds for "
                        "the submitted job (0 = none)"},
        {"status", "client: daemon summary, or one job with --job"},
        {"results", "client: fetch a finished job's merged records "
                    "(needs --job)"},
        {"cancel", "client: cancel a job (needs --job)"},
        {"drain", "client: stop intake, finish queued jobs, exit 0"},
        {"metrics", "client: daemon metrics snapshot (flat JSON), or "
                    "one job's with --job"},
        {"job", "client: job id for "
                "--status/--results/--cancel/--metrics"},
        {"wait", "client: block until the job is terminal"},
    });
    const CommandLine cli(argc, argv, known);

    if (cli.has("connect"))
        runClientMode(cli, cli.getString("connect", ""));

    const Options opt = parseOptions(cli);

    if (opt.run.telemetry) {
        g_telemetryDumpPath = opt.run.telemetryDump;
        std::atexit(dumpTelemetryAtExit);
    }

    // A bare --trace shards spans into --dir; --trace=DIR overrides.
    // An SBN_TRACE_DIR inherited from a parent (supervisor, daemon)
    // always wins - armSweepTracing never re-points it.
    armSweepTracing(opt.run, opt.dir);

    const bool has_shard = cli.has("shard");
    const bool has_merge = cli.getBool("merge", false);
    const bool has_spawn = opt.run.spawnShards != 0;
    if (has_shard + has_merge + has_spawn > 1)
        sbn_fatal("--shard, --merge and --spawn are mutually "
                  "exclusive (shard and merge are separate stages; "
                  "spawn is both)");

    if (has_shard) {
        ensureWritableShardDir(opt.dir);
        const ShardSpec shard =
            ShardSpec::parse(cli.getString("shard", ""));
        // Declare identity for the fault plane: a manually-launched
        // worker is attempt 0 unless SBN_FAULT_ATTEMPT says otherwise
        // (the supervisor sets the scope in its forked children
        // directly).
        unsigned attempt = 0;
        if (const char *env = std::getenv(kFaultAttemptEnvVar);
            env != nullptr && *env != '\0') {
            char *end = nullptr;
            errno = 0;
            const unsigned long parsed = std::strtoul(env, &end, 10);
            if (*end != '\0' || errno == ERANGE)
                sbn_fatal(kFaultAttemptEnvVar,
                          " must be a non-negative integer, got '",
                          env, "'");
            attempt = static_cast<unsigned>(parsed);
        }
        setFaultProcessScope(shard.index, attempt);
        runSweepShard(opt.run, shard, opt.dir, opt.resume);
    } else if (has_merge) {
        const std::vector<std::string> files =
            cli.getStringList("files", {});
        const std::int64_t shards = cli.getInt("shards", 0);
        if (files.empty() && shards < 1)
            sbn_fatal("--merge needs --shards=N (the canonical "
                      "dir/shard-i-of-N.jsonl set) or --files=a,b,... "
                      "(explicit record files, e.g. bench shards)");
        const std::int64_t size = cli.getInt("size", 0);
        if (size < 0)
            sbn_fatal("--size must be a positive point count");
        mergeShards(opt, static_cast<std::size_t>(shards), files,
                    static_cast<std::size_t>(size));
    } else if (has_spawn) {
        spawnAndMerge(opt, opt.run.spawnShards);
    } else {
        runSerial(opt);
    }
    return 0;
}
