/**
 * @file
 * Sharded-sweep orchestrator: run, shard, spawn, merge, resume.
 *
 * One binary drives every stage of a distributed EBW sweep over the
 * paper's parameter grid:
 *
 *   sbn_sweep --n=8 --m=16 --r=4,8 --p=0.1,0.5,1.0
 *       Serial run: evaluate the whole grid in-process and write the
 *       ordered record stream (JSONL, one line per point) to stdout.
 *
 *   sbn_sweep ... --shard=1/4 --dir=out/
 *       Run only shard 1 of 4, appending records to
 *       out/shard-1-of-4.jsonl. Add --resume to skip points whose
 *       records already exist and fingerprint-match (e.g. after a
 *       kill). Any machine can run any shard; the plan is a pure
 *       function of the grid.
 *
 *   sbn_sweep ... --merge --shards=4 --dir=out/
 *       Validate and reassemble the shard files into the flat-grid
 *       ordered stream on stdout - byte-identical to the serial run.
 *
 *   sbn_sweep ... --spawn=4 --dir=out/
 *       Run the 4-shard fleet under ShardSupervisor: one worker per
 *       shard with crash/hang detection, capped-backoff retries with
 *       resume (--retries, --hang-timeout), and work stealing of a
 *       straggler's missing points into free slots (--steal). On
 *       success the merged stream on stdout is byte-identical to the
 *       serial run. When a shard exhausts its retry budget the tool
 *       degrades gracefully: merged partial output on stdout, a
 *       machine-readable missing-points manifest in --dir, one
 *       structured failure line on stderr, and exit code 75
 *       (EX_TEMPFAIL) so callers can tell "rerun the named points"
 *       from "the sweep is broken".
 *
 * --adaptive switches every mode to adaptive-precision estimation
 * (per-point replications grown until --rel/--abs or --cap); records
 * then carry replication counts, rounds and the CI half-width, and
 * the fingerprints bind them to the precision setup so mixed-mode
 * merges are rejected.
 */

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "exec/parallel_runner.hh"
#include "shard/fault.hh"
#include "shard/merge.hh"
#include "shard/plan.hh"
#include "shard/result_io.hh"
#include "shard/runner.hh"
#include "shard/supervisor.hh"
#include "util/cli.hh"
#include "util/logging.hh"

namespace {

using namespace sbn;

/** Everything parsed from the command line. */
struct Options
{
    SweepSpec spec;
    bool adaptive = false;
    PrecisionTarget target;
    RoundSchedule schedule;
    unsigned threads = 0; //!< 0 = defaultExecThreads()
    ShardLayout layout = ShardLayout::Contiguous;
    std::string dir = "sbn-sweep-out";
    bool resume = false;

    // --spawn supervision policy.
    unsigned retries = 2;         //!< respawns allowed per shard
    double hangTimeout = 0.0;     //!< seconds; 0 = liveness off
    double backoffInitial = 0.25; //!< first-retry backoff seconds
    bool steal = true;            //!< work stealing on by default
};

std::vector<ArbitrationPolicy>
parsePolicyList(const std::vector<std::string> &names)
{
    std::vector<ArbitrationPolicy> policies;
    for (const std::string &name : names) {
        if (name == "proc")
            policies.push_back(ArbitrationPolicy::ProcessorPriority);
        else if (name == "mem")
            policies.push_back(ArbitrationPolicy::MemoryPriority);
        else
            sbn_fatal("--policy: unknown policy '", name,
                      "' (expected 'proc' or 'mem')");
    }
    return policies;
}

Options
parseOptions(const CommandLine &cli)
{
    Options opt;

    SweepSpec &spec = opt.spec;
    spec.base.seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 20260611));
    spec.base.warmupCycles = cli.getInt("warmup", 20000);
    spec.base.measureCycles = cli.getInt("measure", 200000);

    for (std::int64_t n : cli.getIntList("n", {}))
        spec.processors.push_back(static_cast<int>(n));
    for (std::int64_t m : cli.getIntList("m", {}))
        spec.modules.push_back(static_cast<int>(m));
    for (std::int64_t r : cli.getIntList("r", {}))
        spec.memoryRatios.push_back(static_cast<int>(r));
    spec.requestProbabilities = cli.getDoubleList("p", {});
    if (cli.has("policy"))
        spec.policies =
            parsePolicyList(cli.getStringList("policy", {}));
    for (std::int64_t b : cli.getIntList("buffered", {}))
        spec.buffering.push_back(b != 0);
    spec.hotFractions = cli.getDoubleList("hot", {});
    spec.favoriteFractions = cli.getDoubleList("favorite", {});

    // Kernel selection applies to every point: materialize() copies
    // the base config, and the fingerprint's kernel marker keeps
    // FastStat records from merging into exact-kernel sweeps.
    const std::string kernel = cli.getString("kernel", "cycleskip");
    if (kernel == "cycleskip")
        spec.base.kernel = KernelKind::CycleSkip;
    else if (kernel == "faststat")
        spec.base.kernel = KernelKind::FastStat;
    else
        sbn_fatal("--kernel: unknown kernel '", kernel,
                  "' (expected 'cycleskip' or 'faststat')");

    opt.adaptive = cli.getBool("adaptive", false);
    opt.target.relative = cli.getDouble("rel", 0.05);
    opt.target.absolute = cli.getDouble("abs", 0.0);
    opt.target.level = cli.getDouble("level", 0.95);

    // Range-check the schedule here, naming the flags: a negative
    // value narrowed to unsigned would otherwise surface as an
    // unrelated internal assertion (or a ~4e9-replication round).
    const std::int64_t initial = cli.getInt("initial", 4);
    if (initial < 2)
        sbn_fatal("--initial must be >= 2 (got ", initial,
                  "); the first round needs a confidence interval");
    const std::int64_t cap = cli.getInt("cap", 64);
    if (cap < initial)
        sbn_fatal("--cap must be >= --initial (got cap=", cap,
                  ", initial=", initial, ")");
    opt.schedule.initial = static_cast<unsigned>(initial);
    opt.schedule.growth = cli.getDouble("growth", 2.0);
    if (!(opt.schedule.growth > 1.0))
        sbn_fatal("--growth must be > 1 (got ", opt.schedule.growth,
                  "); rounds must add replications");
    opt.schedule.cap = static_cast<unsigned>(cap);

    if (cli.has("threads")) {
        opt.threads =
            parseThreadsSpec(cli.getString("threads", "1").c_str());
        // parseThreadsSpec keeps "0 = all hardware threads" symbolic;
        // resolve it here so 0 never reaches the runShard*/runner
        // plumbing, where 0 means "defaultExecThreads()" (serial
        // unless SBN_THREADS is set) instead.
        if (opt.threads == 0)
            opt.threads = ThreadPool::hardwareThreads();
    }
    opt.layout =
        parseShardLayout(cli.getString("layout", "contiguous"));
    opt.dir = cli.getString("dir", opt.dir);
    opt.resume = cli.getBool("resume", false);

    const std::int64_t retries = cli.getInt("retries", 2);
    if (retries < 0)
        sbn_fatal("--retries must be >= 0 (got ", retries, ")");
    opt.retries = static_cast<unsigned>(retries);
    opt.hangTimeout = cli.getDouble("hang-timeout", 0.0);
    if (opt.hangTimeout < 0.0)
        sbn_fatal("--hang-timeout must be >= 0 seconds (got ",
                  opt.hangTimeout, ")");
    opt.backoffInitial = cli.getDouble("backoff", 0.25);
    if (opt.backoffInitial < 0.0)
        sbn_fatal("--backoff must be >= 0 seconds (got ",
                  opt.backoffInitial, ")");
    opt.steal = cli.getBool("steal", true);

    spec.validate();
    return opt;
}

double
evaluatePoint(const SystemConfig &cfg)
{
    return runEbw(cfg);
}

double
evaluateReplication(const SystemConfig &cfg, std::uint64_t seed)
{
    SystemConfig c = cfg;
    c.seed = seed;
    return runEbw(c);
}

/** Run one shard to its canonical file; report stats on stderr. */
void
runOneShard(const Options &opt, const ShardSpec &shard)
{
    const std::string path = shardFilePath(opt.dir, shard);
    ShardRunStats stats;
    if (opt.adaptive)
        stats = runShardAdaptive(opt.spec, shard, opt.layout,
                                 opt.target, opt.schedule,
                                 evaluateReplication, path,
                                 opt.resume, opt.threads);
    else
        stats = runShardSweep(opt.spec, shard, opt.layout,
                              evaluatePoint, path, opt.resume,
                              opt.threads);
    std::fprintf(stderr,
                 "shard %s (%s): %zu point(s) owned, %zu resumed, "
                 "%zu computed -> %s\n",
                 shard.toString().c_str(),
                 shardLayoutName(opt.layout), stats.owned,
                 stats.skipped, stats.computed, path.c_str());
}

MergeCheck
checkFor(const Options &opt, const std::vector<SystemConfig> &points)
{
    return opt.adaptive
               ? adaptiveMergeCheck(points, opt.target, opt.schedule)
               : sweepMergeCheck(points);
}

/**
 * Merge shard record files and stream the records to stdout. The
 * files are either the canonical dir/shard-i-of-N.jsonl set
 * (@p shard_count != 0) or an explicit @p files list (e.g. the
 * per-sweep files the bench binaries write in --shard mode). With
 * @p structural_size != 0 the merge validates structure only (for
 * record files whose grid flags are not at hand); otherwise the
 * records must fingerprint-match the spec's grid.
 */
void
mergeShards(const Options &opt, std::size_t shard_count,
            const std::vector<std::string> &files,
            std::size_t structural_size)
{
    MergeCheck check =
        structural_size != 0
            ? structuralMergeCheck(structural_size)
            : checkFor(opt, opt.spec.materialize());
    if (files.empty()) {
        // Canonical shard set: give the check shard attribution so a
        // strict-merge failure names the exact missing indices and
        // the shard file expected to own each of them.
        check.shardCount = shard_count;
        check.layout = opt.layout;
        check.dir = opt.dir;
    }
    const std::vector<std::string> paths =
        files.empty() ? shardFilePaths(opt.dir, shard_count) : files;
    const std::vector<PointRecord> merged =
        mergeRecordFiles(paths, check);
    writeRecords(std::cout, merged);
    std::fprintf(stderr, "merged %zu record(s) from %zu file(s)\n",
                 merged.size(), paths.size());
}

/** Serial reference run: full grid in-process, records to stdout. */
void
runSerial(const Options &opt)
{
    const std::vector<SystemConfig> points = opt.spec.materialize();
    ParallelRunner &runner = sharedParallelRunner(
        opt.threads != 0 ? opt.threads : defaultExecThreads());

    if (opt.adaptive) {
        const AdaptiveReplicator replicator(runner, opt.target,
                                            opt.schedule);
        replicator.runPoints(
            points, evaluateReplication,
            [&](std::size_t i, const SystemConfig &cfg,
                const AdaptiveEstimate &estimate) {
                std::cout << formatRecord(makeAdaptiveRecord(
                                 i, cfg, estimate, opt.target,
                                 opt.schedule))
                          << '\n';
            });
    } else {
        runner.mapConfigsStreamed(
            points, evaluatePoint,
            [&](std::size_t i, const SystemConfig &cfg,
                double value) {
                std::cout << formatRecord(
                                 makeSweepRecord(i, cfg, value))
                          << '\n';
            });
    }
    std::fprintf(stderr, "swept %zu point(s)\n", points.size());
}

/**
 * Run the shard fleet under ShardSupervisor, then merge to stdout.
 * Complete runs exit 0 with the byte-identical merged stream;
 * budget-exhausted runs emit the merged partial stream, persist the
 * missing-points manifest, report every failed shard in one
 * structured stderr line, and exit kPartialResultExit.
 */
void
spawnAndMerge(const Options &opt, std::size_t shard_count)
{
    // Workers are forked before this process creates any thread
    // pool, so each child owns a clean single-threaded image and
    // builds its own pool. Each worker defaults to one thread; pass
    // --threads to give every worker its own pool.
    const std::vector<SystemConfig> points = opt.spec.materialize();
    MergeCheck check = checkFor(opt, points);
    check.shardCount = shard_count;
    check.layout = opt.layout;
    check.dir = opt.dir;

    SupervisorConfig config;
    config.shardCount = shard_count;
    config.dir = opt.dir;
    config.layout = opt.layout;
    config.expectedRunFp = check.expectedRunFp;
    config.maxRetries = opt.retries;
    config.backoffInitialSeconds = opt.backoffInitial;
    config.hangTimeoutSeconds = opt.hangTimeout;
    config.workStealing = opt.steal;

    Options worker = opt;
    if (worker.threads == 0)
        worker.threads = 1;

    ShardSupervisor supervisor(
        config, [&](const WorkerTask &task) {
            if (task.steal) {
                if (opt.adaptive)
                    runStolenPointsAdaptive(
                        points, task.points, opt.target, opt.schedule,
                        evaluateReplication, task.outPath,
                        worker.threads);
                else
                    runStolenPointsSweep(points, task.points,
                                         evaluatePoint, task.outPath,
                                         worker.threads);
            } else {
                Options w = worker;
                // A respawn must keep the dead worker's flushed
                // records; first launches honor the user's --resume.
                w.resume = w.resume || task.attempt > 0;
                runOneShard(w, task.shard);
            }
        });
    const SupervisorReport report = supervisor.run();

    if (report.interruptSignal != 0) {
        // The supervisor already SIGKILLed and reaped every live
        // worker; nothing is left to clean up here. Skip the merge -
        // an interrupted fleet's output is not a result, partial or
        // otherwise - and die with the conventional signal exit code
        // so shells and CI see the interruption as such.
        std::fprintf(stderr,
                     "--spawn: interrupted by signal %d; workers "
                     "killed and reaped, no merge attempted (shard "
                     "files in %s support --resume)\n",
                     report.interruptSignal, opt.dir.c_str());
        std::exit(128 + report.interruptSignal);
    }

    if (report.respawns != 0 || report.stealLaunches != 0)
        std::fprintf(stderr,
                     "--spawn: supervision recovered: %zu respawn(s), "
                     "%zu steal launch(es) covering %zu point(s)\n",
                     report.respawns, report.stealLaunches,
                     report.stolenPoints);

    // Merge everything the fleet produced - canonical shard files
    // plus steal files. Partial tails are tolerated: an exhausted
    // shard legitimately leaves a torn final line, and any point it
    // covers is deduped against the steal copy bit-identically.
    const PartialMerge merged = collectRecordFiles(
        report.recordFiles, check, /*tolerate_partial_tail=*/true);
    writeRecords(std::cout, merged.records);

    if (!report.complete) {
        // Graceful degradation: persist the exact uncovered points
        // machine-readably and report every failed shard - index,
        // wait status, launches - in ONE structured stderr line.
        const std::string manifest = missingManifestPath(opt.dir);
        writeMissingPointsManifest(manifest, check,
                                   report.missingPoints);
        std::string line = "--spawn: incomplete:";
        for (std::size_t i = 0; i < report.shards.size(); ++i) {
            const ShardOutcome &outcome = report.shards[i];
            if (outcome.state != ShardState::Exhausted)
                continue;
            line += " shard " + std::to_string(i) + "/" +
                    std::to_string(shard_count) + " {" +
                    describeWaitStatus(outcome.lastStatus) + ", " +
                    std::to_string(outcome.launches) + " launch(es)" +
                    (outcome.everHung ? ", hung" : "") + "}";
        }
        line += "; " + std::to_string(report.missingPoints.size()) +
                "/" + std::to_string(check.gridSize) +
                " point(s) missing; merged partial stream written; "
                "manifest: " +
                manifest;
        std::fprintf(stderr, "%s\n", line.c_str());
        std::exit(kPartialResultExit);
    }

    std::fprintf(stderr, "merged %zu record(s) from %zu file(s)\n",
                 merged.records.size(), report.recordFiles.size());
}

} // namespace

int
main(int argc, char **argv)
{
    const std::map<std::string, std::string> known{
        {"n", "processor-count axis, e.g. 8 or 4,8,16"},
        {"m", "memory-module axis"},
        {"r", "memory/bus ratio axis"},
        {"p", "request-probability axis, e.g. 0.1,0.5,1.0"},
        {"policy", "arbitration axis: proc, mem or proc,mem"},
        {"buffered", "Section-6 buffering axis: 0, 1 or 0,1"},
        {"hot", "hot-spot workload axis: fraction h values, e.g. "
                "0.0,0.2,0.4 (forces the HotSpot pattern)"},
        {"favorite", "favorite-module workload axis: fraction f "
                     "values (forces the Favorite pattern)"},
        {"kernel", "simulation kernel: cycleskip (exact, default) or "
                   "faststat (statistically equivalent, faster)"},
        {"seed", "base RNG seed (per-point seeds derive from it)"},
        {"warmup", "warmup bus cycles per run"},
        {"measure", "measured bus cycles per run"},
        {"adaptive", "adaptive-precision replications per point"},
        {"rel", "adaptive: relative CI half-width target"},
        {"abs", "adaptive: absolute CI half-width target"},
        {"level", "adaptive: confidence level"},
        {"initial", "adaptive: first-round replications"},
        {"growth", "adaptive: round growth factor"},
        {"cap", "adaptive: replication cap"},
        {"threads", "worker threads (0 = all hardware threads)"},
        {"shard", "run one shard: i/N (0-based)"},
        {"shards", "shard count for --merge"},
        {"files", "merge: explicit record files instead of the "
                  "canonical shard-i-of-N.jsonl set"},
        {"size", "merge: validate structure only, for a grid of this "
                 "many points (skips fingerprint checks)"},
        {"layout", "shard layout: contiguous or strided"},
        {"dir", "shard file directory"},
        {"resume", "skip points with matching records on disk"},
        {"merge", "merge shard files to stdout"},
        {"spawn", "run N supervised local shard workers, then merge"},
        {"retries", "spawn: respawns allowed per shard (default 2)"},
        {"hang-timeout", "spawn: seconds without record progress "
                         "before a worker is declared hung and "
                         "killed (0 = off)"},
        {"backoff", "spawn: initial retry backoff seconds (doubles "
                    "per failure, capped)"},
        {"steal", "spawn: let free workers steal missing points from "
                  "stragglers (default 1)"},
    };
    const CommandLine cli(argc, argv, known);
    const Options opt = parseOptions(cli);

    const bool has_shard = cli.has("shard");
    const bool has_merge = cli.getBool("merge", false);
    const bool has_spawn = cli.has("spawn");
    if (has_shard + has_merge + has_spawn > 1)
        sbn_fatal("--shard, --merge and --spawn are mutually "
                  "exclusive (shard and merge are separate stages; "
                  "spawn is both)");

    if (has_shard) {
        ensureWritableShardDir(opt.dir);
        const ShardSpec shard =
            ShardSpec::parse(cli.getString("shard", ""));
        // Declare identity for the fault plane: a manually-launched
        // worker is attempt 0 unless SBN_FAULT_ATTEMPT says otherwise
        // (the supervisor sets the scope in its forked children
        // directly).
        unsigned attempt = 0;
        if (const char *env = std::getenv(kFaultAttemptEnvVar);
            env != nullptr && *env != '\0') {
            char *end = nullptr;
            errno = 0;
            const unsigned long parsed = std::strtoul(env, &end, 10);
            if (*end != '\0' || errno == ERANGE)
                sbn_fatal(kFaultAttemptEnvVar,
                          " must be a non-negative integer, got '",
                          env, "'");
            attempt = static_cast<unsigned>(parsed);
        }
        setFaultProcessScope(shard.index, attempt);
        runOneShard(opt, shard);
    } else if (has_merge) {
        const std::vector<std::string> files =
            cli.getStringList("files", {});
        const std::int64_t shards = cli.getInt("shards", 0);
        if (files.empty() && shards < 1)
            sbn_fatal("--merge needs --shards=N (the canonical "
                      "dir/shard-i-of-N.jsonl set) or --files=a,b,... "
                      "(explicit record files, e.g. bench shards)");
        const std::int64_t size = cli.getInt("size", 0);
        if (size < 0)
            sbn_fatal("--size must be a positive point count");
        mergeShards(opt, static_cast<std::size_t>(shards), files,
                    static_cast<std::size_t>(size));
    } else if (has_spawn) {
        const std::int64_t shards = cli.getInt("spawn", 0);
        if (shards < 1)
            sbn_fatal("--spawn=K needs K >= 1 worker processes");
        ensureWritableShardDir(opt.dir);
        spawnAndMerge(opt, static_cast<std::size_t>(shards));
    } else {
        runSerial(opt);
    }
    return 0;
}
